"""Execute design points through the evaluation stack.

Each :class:`~repro.explore.space.DesignPoint` runs the paper's dynamic
simulation (the table 2/4 machinery) per benchmark through one shared
:class:`~repro.runner.Runner` — local pool or ``--service`` broker — so
points that share stages dedupe on content-hash job keys exactly like
any other sweep: one build/trace/profile per benchmark for the *whole*
sweep, one compile/simulate per distinct (machine fingerprint,
speculation config) pair.  The combined job graph across every point is
warmed first, then results are pure cache reads.

The result layer is deliberately plain data (no live machine objects) so
:mod:`repro.explore.report` can serialise it deterministically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.evaluation.experiment import (
    Evaluation,
    EvaluationSettings,
    geometric_mean,
)
from repro.explore.cost import machine_cost
from repro.explore.space import DesignPoint
from repro.obs.cycles import CPIStack


@dataclass(frozen=True)
class BenchmarkResult:
    """One (point, benchmark) simulation, reduced to report scalars."""

    benchmark: str
    speedup: float
    speedup_baseline: float
    accuracy: float
    cycles_nopred: int
    cycles_proposed: int


@dataclass(frozen=True)
class PointResult:
    """One evaluated design point."""

    label: str
    machine_name: str
    fingerprint: str
    assignment: Tuple[Tuple[str, Any], ...]
    cost: float
    #: Geometric-mean speedup of the proposed machine over no-prediction.
    speedup: float
    #: Arithmetic-mean prediction accuracy across benchmarks.
    accuracy: float
    benchmarks: Tuple[BenchmarkResult, ...]
    #: Dominant non-issue cause of the point's merged proposed-machine
    #: CPI stack (see :mod:`repro.obs.cycles`) — what bottlenecks this
    #: design; ``"unknown"`` when cycle accounting was unavailable.
    bottleneck: str = "unknown"

    def to_json(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "machine": self.machine_name,
            "fingerprint": self.fingerprint,
            "assignment": [[name, value] for name, value in self.assignment],
            "cost": round(self.cost, 6),
            "speedup": round(self.speedup, 6),
            "accuracy": round(self.accuracy, 6),
            "bottleneck": self.bottleneck,
            "benchmarks": [
                {
                    "benchmark": b.benchmark,
                    "speedup": round(b.speedup, 6),
                    "speedup_baseline": round(b.speedup_baseline, 6),
                    "accuracy": round(b.accuracy, 6),
                    "cycles_nopred": b.cycles_nopred,
                    "cycles_proposed": b.cycles_proposed,
                }
                for b in self.benchmarks
            ],
        }


@dataclass(frozen=True)
class PrunedPoint:
    """One design point that was *not* exactly simulated, and why.

    Reasons: ``"surrogate"`` (ranked out by the analytical estimate),
    ``"duplicate"`` (identical machine + speculation config to an
    earlier point), ``"error"`` (its evaluation raised).  Pruned points
    are always recorded in the report — never silently dropped.
    """

    label: str
    reason: str
    detail: str
    estimated_speedup: Optional[float] = None

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "label": self.label,
            "reason": self.reason,
            "detail": self.detail,
        }
        if self.estimated_speedup is not None:
            doc["estimated_speedup"] = round(self.estimated_speedup, 6)
        return doc


@dataclass(frozen=True)
class SurrogateValidation:
    """Surrogate-vs-exact cross-validation over the simulated points.

    Every ``--surrogate`` run validates the estimates of the points it
    *did* simulate exactly, so drift in the analytical model is caught
    on every sweep, not just in CI.
    """

    bound: float
    #: (point label, benchmark, estimated cycles, exact cycles, rel err).
    entries: Tuple[Tuple[str, str, float, int, float], ...]

    @property
    def max_rel_error(self) -> float:
        return max((e[4] for e in self.entries), default=0.0)

    @property
    def mean_rel_error(self) -> float:
        if not self.entries:
            return 0.0
        return sum(e[4] for e in self.entries) / len(self.entries)

    @property
    def within_bound(self) -> bool:
        return self.max_rel_error <= self.bound

    def to_json(self) -> Dict[str, Any]:
        return {
            "bound": self.bound,
            "max_rel_error": round(self.max_rel_error, 6),
            "mean_rel_error": round(self.mean_rel_error, 6),
            "within_bound": self.within_bound,
            "entries": [
                {
                    "label": label,
                    "benchmark": benchmark,
                    "estimated_cycles": round(estimated, 2),
                    "exact_cycles": exact,
                    "rel_error": round(err, 6),
                }
                for label, benchmark, estimated, exact, err in self.entries
            ],
        }


@dataclass(frozen=True)
class ExploreOutcome:
    """Everything one sweep produced: exact results + pruning log."""

    results: Tuple[PointResult, ...]
    pruned: Tuple[PrunedPoint, ...] = ()
    surrogate: Optional[SurrogateValidation] = None


def _evaluation_for(
    point: DesignPoint,
    scale: float,
    benchmarks: Optional[Sequence[str]],
    runner,
) -> Evaluation:
    settings = EvaluationSettings(
        scale=scale, spec_config=point.spec_config
    ).with_benchmarks(benchmarks).with_machine("base", point.spec)
    # Cycle accounting rides along on every point so reports can label
    # frontier entries with their dominant bottleneck.
    return Evaluation(settings, runner=runner, collect_cycles=True)


def explore_points(
    points: Sequence[DesignPoint],
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    runner=None,
    progress=None,
) -> List[PointResult]:
    """Evaluate every design point; returns results in point order.

    With a runner, the union of all points' job graphs is warmed first
    (one parallel/remote execution with cross-point dedup), then each
    point reads its simulations back from cache.
    """
    evaluations = [
        _evaluation_for(point, scale, benchmarks, runner) for point in points
    ]
    if runner is not None:
        jobs = []
        seen = set()
        for evaluation in evaluations:
            for job in evaluation.required_jobs(["table2"]):
                if job.key() not in seen:
                    seen.add(job.key())
                    jobs.append(job)
        if jobs:
            runner.run(jobs)

    results: List[PointResult] = []
    for point, evaluation in zip(points, evaluations):
        if progress is not None:
            progress(point)
        results.append(_point_result(point, evaluation))
    return results


def _point_result(point: DesignPoint, evaluation: Evaluation) -> PointResult:
    """Exactly simulate one point's benchmarks and reduce to a result."""
    bench_results: List[BenchmarkResult] = []
    merged = CPIStack.of({})
    for name in evaluation.benchmarks:
        sim = evaluation.simulation(name, evaluation.machine_for("base"))
        stacks = getattr(sim, "cycle_stacks", None)
        if stacks and "proposed" in stacks:
            merged = merged.merged(CPIStack.of(stacks["proposed"]))
        bench_results.append(
            BenchmarkResult(
                benchmark=name,
                speedup=sim.speedup_proposed,
                speedup_baseline=sim.speedup_baseline,
                accuracy=sim.prediction_accuracy,
                cycles_nopred=sim.cycles_nopred,
                cycles_proposed=sim.cycles_proposed,
            )
        )
    return PointResult(
        label=point.label,
        machine_name=point.spec.name,
        fingerprint=point.fingerprint(),
        assignment=point.assignment,
        cost=machine_cost(point.spec),
        speedup=geometric_mean([b.speedup for b in bench_results]),
        accuracy=(
            sum(b.accuracy for b in bench_results) / len(bench_results)
            if bench_results
            else 0.0
        ),
        benchmarks=tuple(bench_results),
        bottleneck=merged.dominant() or "unknown",
    )


def _estimated_frontier(
    estimates: Dict[str, float], costs: Dict[str, float]
) -> set:
    """Labels on the cost/estimated-speedup Pareto frontier."""
    frontier = set()
    best = float("-inf")
    for label in sorted(
        estimates, key=lambda l: (costs[l], -estimates[l], l)
    ):
        if estimates[label] > best:
            best = estimates[label]
            frontier.add(label)
    return frontier


def explore(
    points: Sequence[DesignPoint],
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    runner=None,
    progress=None,
    surrogate: bool = False,
    surrogate_keep: Optional[int] = None,
) -> ExploreOutcome:
    """Evaluate a sweep with dedup, error capture and optional pruning.

    Unlike :func:`explore_points` (kept for callers that want the plain
    one-result-per-point list and fail-fast errors), this entry point:

    - skips points whose (machine fingerprint, speculation config) pair
      duplicates an earlier point — the evaluation stack would dedupe
      their jobs anyway, so the duplicate row carries no information;
    - records a point whose evaluation *raises* as pruned with reason
      ``"error"`` instead of aborting the whole sweep;
    - with ``surrogate=True``, compiles every candidate, ranks them by
      the analytical cycles estimate (:mod:`repro.batchsim.surrogate`),
      and exactly simulates only the estimated cost/speedup Pareto
      frontier plus the top ``surrogate_keep`` points by estimated
      speedup (default: the top quarter).  Every survivor's estimate is
      then cross-validated against its exact simulation.

    Pruned points are returned (and serialised into the report) with
    their reason — nothing is silently dropped.
    """
    pruned: List[PrunedPoint] = []

    # -- dedup ----------------------------------------------------------
    unique: List[DesignPoint] = []
    first_of: Dict[Tuple[str, Any], str] = {}
    for point in points:
        key = (point.fingerprint(), point.spec_config)
        if key in first_of:
            pruned.append(
                PrunedPoint(
                    label=point.label,
                    reason="duplicate",
                    detail=(
                        "identical machine and speculation config to "
                        f"point {first_of[key]!r}"
                    ),
                )
            )
            continue
        first_of[key] = point.label
        unique.append(point)

    evaluations = {
        point.label: _evaluation_for(point, scale, benchmarks, runner)
        for point in unique
    }

    # -- surrogate ranking ---------------------------------------------
    estimates: Dict[str, float] = {}
    estimate_details: Dict[str, Dict[str, Any]] = {}
    candidates = list(unique)
    if surrogate and unique:
        from repro.batchsim.surrogate import estimate_compilation

        if runner is not None:
            from repro.runner import compile_job

            jobs, seen = [], set()
            for point in unique:
                evaluation = evaluations[point.label]
                for name in evaluation.benchmarks:
                    job = compile_job(
                        name,
                        evaluation.machine_for("base"),
                        scale=evaluation.settings.scale,
                        spec_config=evaluation.settings.spec_config,
                    )
                    if job.key() not in seen:
                        seen.add(job.key())
                        jobs.append(job)
            if jobs:
                runner.run(jobs)

        candidates = []
        for point in unique:
            evaluation = evaluations[point.label]
            try:
                per_bench = {}
                for name in evaluation.benchmarks:
                    per_bench[name] = estimate_compilation(
                        evaluation.compilation(
                            name, evaluation.machine_for("base")
                        )
                    )
            except Exception as exc:
                pruned.append(
                    PrunedPoint(
                        label=point.label,
                        reason="error",
                        detail=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            estimates[point.label] = geometric_mean(
                [e.speedup for e in per_bench.values()]
            )
            estimate_details[point.label] = per_bench
            candidates.append(point)

        costs = {p.label: machine_cost(p.spec) for p in candidates}
        keep = _estimated_frontier(estimates, costs)
        extra = (
            surrogate_keep
            if surrogate_keep is not None
            else math.ceil(len(candidates) / 4)
        )
        by_estimate = sorted(
            candidates, key=lambda p: (-estimates[p.label], p.label)
        )
        keep.update(p.label for p in by_estimate[:extra])
        kept = []
        for point in candidates:
            if point.label in keep:
                kept.append(point)
            else:
                pruned.append(
                    PrunedPoint(
                        label=point.label,
                        reason="surrogate",
                        detail=(
                            "estimated speedup ranked below the keep set "
                            "(estimated frontier + top "
                            f"{extra} by estimate)"
                        ),
                        estimated_speedup=estimates[point.label],
                    )
                )
        candidates = kept

    # -- exact simulation ----------------------------------------------
    if runner is not None and candidates:
        jobs, seen = [], set()
        for point in candidates:
            for job in evaluations[point.label].required_jobs(["table2"]):
                if job.key() not in seen:
                    seen.add(job.key())
                    jobs.append(job)
        if jobs:
            runner.run(jobs)

    results: List[PointResult] = []
    validation_entries: List[Tuple[str, str, float, int, float]] = []
    for point in candidates:
        if progress is not None:
            progress(point)
        evaluation = evaluations[point.label]
        try:
            result = _point_result(point, evaluation)
        except Exception as exc:
            pruned.append(
                PrunedPoint(
                    label=point.label,
                    reason="error",
                    detail=f"{type(exc).__name__}: {exc}",
                    estimated_speedup=estimates.get(point.label),
                )
            )
            continue
        results.append(result)
        for bench in result.benchmarks:
            estimate = estimate_details.get(point.label, {}).get(
                bench.benchmark
            )
            if estimate is None:
                continue
            err = (
                abs(estimate.cycles_proposed - bench.cycles_proposed)
                / bench.cycles_proposed
                if bench.cycles_proposed
                else 0.0
            )
            validation_entries.append(
                (
                    point.label,
                    bench.benchmark,
                    estimate.cycles_proposed,
                    bench.cycles_proposed,
                    err,
                )
            )

    validation = None
    if surrogate:
        from repro.batchsim.surrogate import DOCUMENTED_ERROR_BOUND

        validation = SurrogateValidation(
            bound=DOCUMENTED_ERROR_BOUND, entries=tuple(validation_entries)
        )
    return ExploreOutcome(
        results=tuple(results),
        pruned=tuple(pruned),
        surrogate=validation,
    )


def pareto_frontier(results: Sequence[PointResult]) -> List[PointResult]:
    """The cost/speedup Pareto-optimal subset, cheapest first.

    A point is on the frontier iff no other point is at most as costly
    *and* strictly faster (ties on both axes keep the first occurrence
    in input order, so frontiers are deterministic).
    """
    frontier: List[PointResult] = []
    # Sort by (cost asc, speedup desc, label) — then a single max-scan
    # keeps exactly the non-dominated points.
    ordered = sorted(
        enumerate(results),
        key=lambda iv: (iv[1].cost, -iv[1].speedup, iv[1].label, iv[0]),
    )
    best = float("-inf")
    seen_keys = set()
    for _, result in ordered:
        if result.speedup > best:
            best = result.speedup
            key = (result.cost, result.speedup)
            if key not in seen_keys:
                seen_keys.add(key)
                frontier.append(result)
    return frontier
