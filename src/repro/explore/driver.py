"""Execute design points through the evaluation stack.

Each :class:`~repro.explore.space.DesignPoint` runs the paper's dynamic
simulation (the table 2/4 machinery) per benchmark through one shared
:class:`~repro.runner.Runner` — local pool or ``--service`` broker — so
points that share stages dedupe on content-hash job keys exactly like
any other sweep: one build/trace/profile per benchmark for the *whole*
sweep, one compile/simulate per distinct (machine fingerprint,
speculation config) pair.  The combined job graph across every point is
warmed first, then results are pure cache reads.

The result layer is deliberately plain data (no live machine objects) so
:mod:`repro.explore.report` can serialise it deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.evaluation.experiment import (
    Evaluation,
    EvaluationSettings,
    geometric_mean,
)
from repro.explore.cost import machine_cost
from repro.explore.space import DesignPoint
from repro.obs.cycles import CPIStack


@dataclass(frozen=True)
class BenchmarkResult:
    """One (point, benchmark) simulation, reduced to report scalars."""

    benchmark: str
    speedup: float
    speedup_baseline: float
    accuracy: float
    cycles_nopred: int
    cycles_proposed: int


@dataclass(frozen=True)
class PointResult:
    """One evaluated design point."""

    label: str
    machine_name: str
    fingerprint: str
    assignment: Tuple[Tuple[str, Any], ...]
    cost: float
    #: Geometric-mean speedup of the proposed machine over no-prediction.
    speedup: float
    #: Arithmetic-mean prediction accuracy across benchmarks.
    accuracy: float
    benchmarks: Tuple[BenchmarkResult, ...]
    #: Dominant non-issue cause of the point's merged proposed-machine
    #: CPI stack (see :mod:`repro.obs.cycles`) — what bottlenecks this
    #: design; ``"unknown"`` when cycle accounting was unavailable.
    bottleneck: str = "unknown"

    def to_json(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "machine": self.machine_name,
            "fingerprint": self.fingerprint,
            "assignment": [[name, value] for name, value in self.assignment],
            "cost": round(self.cost, 6),
            "speedup": round(self.speedup, 6),
            "accuracy": round(self.accuracy, 6),
            "bottleneck": self.bottleneck,
            "benchmarks": [
                {
                    "benchmark": b.benchmark,
                    "speedup": round(b.speedup, 6),
                    "speedup_baseline": round(b.speedup_baseline, 6),
                    "accuracy": round(b.accuracy, 6),
                    "cycles_nopred": b.cycles_nopred,
                    "cycles_proposed": b.cycles_proposed,
                }
                for b in self.benchmarks
            ],
        }


def _evaluation_for(
    point: DesignPoint,
    scale: float,
    benchmarks: Optional[Sequence[str]],
    runner,
) -> Evaluation:
    settings = EvaluationSettings(
        scale=scale, spec_config=point.spec_config
    ).with_benchmarks(benchmarks).with_machine("base", point.spec)
    # Cycle accounting rides along on every point so reports can label
    # frontier entries with their dominant bottleneck.
    return Evaluation(settings, runner=runner, collect_cycles=True)


def explore_points(
    points: Sequence[DesignPoint],
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    runner=None,
    progress=None,
) -> List[PointResult]:
    """Evaluate every design point; returns results in point order.

    With a runner, the union of all points' job graphs is warmed first
    (one parallel/remote execution with cross-point dedup), then each
    point reads its simulations back from cache.
    """
    evaluations = [
        _evaluation_for(point, scale, benchmarks, runner) for point in points
    ]
    if runner is not None:
        jobs = []
        seen = set()
        for evaluation in evaluations:
            for job in evaluation.required_jobs(["table2"]):
                if job.key() not in seen:
                    seen.add(job.key())
                    jobs.append(job)
        if jobs:
            runner.run(jobs)

    results: List[PointResult] = []
    for point, evaluation in zip(points, evaluations):
        if progress is not None:
            progress(point)
        bench_results: List[BenchmarkResult] = []
        merged = CPIStack.of({})
        for name in evaluation.benchmarks:
            sim = evaluation.simulation(name, evaluation.machine_for("base"))
            stacks = getattr(sim, "cycle_stacks", None)
            if stacks and "proposed" in stacks:
                merged = merged.merged(CPIStack.of(stacks["proposed"]))
            bench_results.append(
                BenchmarkResult(
                    benchmark=name,
                    speedup=sim.speedup_proposed,
                    speedup_baseline=sim.speedup_baseline,
                    accuracy=sim.prediction_accuracy,
                    cycles_nopred=sim.cycles_nopred,
                    cycles_proposed=sim.cycles_proposed,
                )
            )
        results.append(
            PointResult(
                label=point.label,
                machine_name=point.spec.name,
                fingerprint=point.fingerprint(),
                assignment=point.assignment,
                cost=machine_cost(point.spec),
                speedup=geometric_mean([b.speedup for b in bench_results]),
                accuracy=(
                    sum(b.accuracy for b in bench_results) / len(bench_results)
                    if bench_results
                    else 0.0
                ),
                benchmarks=tuple(bench_results),
                bottleneck=merged.dominant() or "unknown",
            )
        )
    return results


def pareto_frontier(results: Sequence[PointResult]) -> List[PointResult]:
    """The cost/speedup Pareto-optimal subset, cheapest first.

    A point is on the frontier iff no other point is at most as costly
    *and* strictly faster (ties on both axes keep the first occurrence
    in input order, so frontiers are deterministic).
    """
    frontier: List[PointResult] = []
    # Sort by (cost asc, speedup desc, label) — then a single max-scan
    # keeps exactly the non-dominated points.
    ordered = sorted(
        enumerate(results),
        key=lambda iv: (iv[1].cost, -iv[1].speedup, iv[1].label, iv[0]),
    )
    best = float("-inf")
    seen_keys = set()
    for _, result in ordered:
        if result.speedup > best:
            best = result.speedup
            key = (result.cost, result.speedup)
            if key not in seen_keys:
                seen_keys.add(key)
                frontier.append(result)
    return frontier
