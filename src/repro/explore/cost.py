"""A relative hardware-cost model for swept machine configurations.

The explore driver needs a second objective beside speedup to make a
Pareto frontier meaningful: a bigger machine is (almost) always faster,
so "fastest" alone degenerates to "largest".  This model assigns every
:class:`~repro.machine.MachineSpec` a dimensionless *cost* — an additive
area/complexity proxy in "unit-equivalents", deliberately simple and
fully documented so frontier plots are interpretable:

* each functional unit costs its class weight (FALU and MEM units are
  several times an integer ALU, branch units slightly less);
* issue width costs per slot (decode/dispatch and register-file ports
  grow with width);
* the value-prediction hardware costs per predictor-table entry and per
  (D)FCM history-table entry (``2**table_bits``), scaled down because a
  table entry is far smaller than a functional unit; an unbounded table
  is priced at :data:`UNBOUNDED_TABLE_ENTRIES`;
* the CCB, OVB and Synchronization register cost per entry/bit; unbounded
  buffers are priced at :data:`UNBOUNDED_BUFFER_ENTRIES`.

Absolute numbers are meaningless; *ratios between configurations of one
sweep* are what the frontier uses.  All weights are keyword overridable
for sensitivity studies.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.ir.opcodes import FUClass
from repro.machine.predictor import PredictorSpec
from repro.machine.spec import MachineSpec

#: Per-unit weights, in integer-ALU equivalents.
DEFAULT_UNIT_WEIGHTS: Mapping[FUClass, float] = {
    FUClass.IALU: 1.0,
    FUClass.FALU: 4.0,
    FUClass.MEM: 3.0,
    FUClass.BRANCH: 0.5,
}

#: Cost of one issue slot (decode + ports).
ISSUE_SLOT_WEIGHT = 0.5

#: Cost of one value-prediction-table entry (tag + value + chooser state).
VPT_ENTRY_WEIGHT = 0.002

#: Cost of one (D)FCM history/hash-table entry.
FCM_ENTRY_WEIGHT = 0.0005

#: Cost of one CCB entry (a buffered operation + bookkeeping).
CCB_ENTRY_WEIGHT = 0.01

#: Cost of one OVB entry (value + state machine).
OVB_ENTRY_WEIGHT = 0.01

#: Cost of one Synchronization-register bit.
SYNC_BIT_WEIGHT = 0.005

#: What "unbounded" is priced as. The paper simulates unbounded buffers;
#: a real implementation would bound them, so unbounded configurations
#: are charged a large-but-finite reference size rather than infinity
#: (which would make every paper machine incomparable).
UNBOUNDED_TABLE_ENTRIES = 4096
UNBOUNDED_BUFFER_ENTRIES = 256


def predictor_cost(
    predictor: PredictorSpec,
    vpt_entry_weight: float = VPT_ENTRY_WEIGHT,
    fcm_entry_weight: float = FCM_ENTRY_WEIGHT,
) -> float:
    """Prediction-hardware cost: table entries + per-kind structures."""
    entries = (
        predictor.table_entries
        if predictor.table_entries is not None
        else UNBOUNDED_TABLE_ENTRIES
    )
    cost = entries * vpt_entry_weight
    if predictor.kind in ("fcm", "dfcm", "hybrid"):
        cost += (2 ** predictor.table_bits) * fcm_entry_weight
    if predictor.kind == "hybrid":
        # The stride component + chooser counters ride on the same table.
        cost += entries * vpt_entry_weight * 0.5
    return cost


def machine_cost(spec: MachineSpec, **overrides: float) -> float:
    """The total relative cost of one machine configuration.

    Weight overrides (``issue_slot_weight=...``, ``ccb_entry_weight=...``,
    ``ovb_entry_weight=...``, ``sync_bit_weight=...``,
    ``vpt_entry_weight=...``, ``fcm_entry_weight=...``) allow sensitivity
    studies without editing the module constants.
    """
    issue_slot = overrides.get("issue_slot_weight", ISSUE_SLOT_WEIGHT)
    ccb_entry = overrides.get("ccb_entry_weight", CCB_ENTRY_WEIGHT)
    ovb_entry = overrides.get("ovb_entry_weight", OVB_ENTRY_WEIGHT)
    sync_bit = overrides.get("sync_bit_weight", SYNC_BIT_WEIGHT)

    cost = 0.0
    for fu, count in spec.units.items():
        cost += DEFAULT_UNIT_WEIGHTS.get(fu, 1.0) * count
    cost += spec.issue_width * issue_slot
    ccb = spec.ccb_capacity if spec.ccb_capacity is not None else UNBOUNDED_BUFFER_ENTRIES
    ovb = spec.ovb_capacity if spec.ovb_capacity is not None else UNBOUNDED_BUFFER_ENTRIES
    cost += ccb * ccb_entry
    cost += ovb * ovb_entry
    cost += spec.sync_width * sync_bit
    cost += predictor_cost(
        spec.predictor,
        vpt_entry_weight=overrides.get("vpt_entry_weight", VPT_ENTRY_WEIGHT),
        fcm_entry_weight=overrides.get("fcm_entry_weight", FCM_ENTRY_WEIGHT),
    )
    return cost


def cost_breakdown(spec: MachineSpec) -> Dict[str, float]:
    """Per-component costs (sums to :func:`machine_cost` defaults)."""
    units = sum(
        DEFAULT_UNIT_WEIGHTS.get(fu, 1.0) * count
        for fu, count in spec.units.items()
    )
    ccb = spec.ccb_capacity if spec.ccb_capacity is not None else UNBOUNDED_BUFFER_ENTRIES
    ovb = spec.ovb_capacity if spec.ovb_capacity is not None else UNBOUNDED_BUFFER_ENTRIES
    return {
        "units": units,
        "issue": spec.issue_width * ISSUE_SLOT_WEIGHT,
        "ccb": ccb * CCB_ENTRY_WEIGHT,
        "ovb": ovb * OVB_ENTRY_WEIGHT,
        "sync": spec.sync_width * SYNC_BIT_WEIGHT,
        "predictor": predictor_cost(spec.predictor),
    }
