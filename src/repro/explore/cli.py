"""``repro-explore``: sweep the machine design space the paper opened.

Usage::

    repro-explore --axis issue_width=2,4,8 --axis threshold=0.5,0.65,0.8
    repro-explore --axis predictor.kind=stride,fcm,hybrid --scale 0.25
    repro-explore --base machines/custom.toml --axis fu_scale=1,2
    repro-explore --axis issue_width=2,4 --random 4 --seed 7
    repro-explore ... --jobs 4                 # parallel local runner
    repro-explore ... --service http://broker:8731   # remote fleet
    repro-explore ... --out sweep.json --plot sweep.png

Every point runs the paper's dynamic simulation per benchmark through
the shared content-hash-keyed runner, so points dedupe their common
stages (one build/trace/profile per benchmark for the whole sweep) and
reruns are pure cache reads.  The JSON artifact is deterministic —
identical across ``--jobs`` settings, cache temperature and
local-vs-``--service`` execution.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.explore.driver import explore, pareto_frontier
from repro.explore.report import (
    dump_report,
    plot_frontier,
    render_frontier,
    render_table,
    report_payload,
)
from repro.explore.space import Axis, DesignSpace
from repro.machine.configs import spec_by_name


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-explore",
        description=(
            "Design-space exploration over declarative machine specs: "
            "grid/random sweeps, speedup vs hardware cost, Pareto frontier."
        ),
    )
    parser.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help=(
            "one swept axis (repeatable), e.g. issue_width=2,4,8, "
            "threshold=0.5,0.65, predictor.kind=stride,hybrid, "
            "latency.load=2,3,5, ccb_capacity=8,none"
        ),
    )
    parser.add_argument(
        "--base",
        default="playdoh-4w",
        metavar="NAME|SPEC-FILE",
        help=(
            "base machine the axes perturb: a registry name or a "
            ".json/.toml spec file (default: playdoh-4w)"
        ),
    )
    parser.add_argument(
        "--random",
        type=int,
        default=None,
        metavar="N",
        help="sample N points from the grid instead of running all of it",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="random-sample seed (default 0; same seed = same points)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload size multiplier (default 1.0)",
    )
    parser.add_argument(
        "--threshold", type=float, default=None,
        help="base speculation threshold (default: the pass default, 0.65)",
    )
    parser.add_argument(
        "--benchmarks",
        action="append",
        metavar="NAME[,NAME...]",
        help="restrict the suite (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="pipeline worker processes (1 = serial, 0 = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="on-disk result cache location",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--cache-backend", metavar="SPEC", default=None,
        help="result cache backend: disk[:/path], sqlite[:/path.db], http(s) URL",
    )
    parser.add_argument(
        "--service", metavar="URL", default=None,
        help="execute the job graph on a remote repro-serve broker",
    )
    parser.add_argument(
        "--events", metavar="PATH", default=None,
        help="write JSONL runner progress events to PATH",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the deterministic JSON sweep artifact to PATH",
    )
    parser.add_argument(
        "--plot", metavar="PATH", default=None,
        help="write a cost/speedup frontier plot (needs matplotlib)",
    )
    parser.add_argument(
        "--surrogate", action="store_true",
        help=(
            "rank points with the analytical cycles surrogate and "
            "exactly simulate only the estimated Pareto frontier plus "
            "the top candidates; pruned points are logged in the report"
        ),
    )
    parser.add_argument(
        "--surrogate-keep", type=int, default=None, metavar="N",
        help=(
            "with --surrogate: how many extra top-estimate points to "
            "simulate beyond the estimated frontier (default: a quarter "
            "of the candidates)"
        ),
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print per-job progress lines to stderr",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the artifact JSON to stdout instead of the text table",
    )
    return parser


def _parse_benchmarks(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    names: List[str] = []
    for chunk in values:
        names.extend(name for name in chunk.split(",") if name)
    return names


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    try:
        axes = tuple(Axis.parse(text) for text in args.axis)
        base = spec_by_name(args.base)
    except (ValueError, KeyError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not axes:
        print(
            "no axes declared; pass at least one --axis NAME=V1,V2,... "
            "(see --help for the axis catalogue)",
            file=sys.stderr,
        )
        return 2

    base_config = base.spec_config()
    if args.threshold is not None:
        import dataclasses

        base_config = dataclasses.replace(
            base_config, threshold=args.threshold
        )
    space = DesignSpace(base=base, axes=axes, base_config=base_config)
    if args.random is not None:
        points = space.sample(args.random, seed=args.seed)
    else:
        points = space.grid()
    print(
        f"exploring {len(points)} of {space.size} design points "
        f"over {len(axes)} axes (base {base.name})",
        file=sys.stderr,
    )

    from repro.runner import EventLog, ProgressRenderer, Runner

    events = EventLog(
        path=args.events,
        renderer=ProgressRenderer() if args.progress else None,
    )
    if args.service:
        from repro.service.client import ServiceRunner

        runner = ServiceRunner(args.service, events=events)
    else:
        from repro.service.backends import make_cache

        runner = Runner(
            jobs=args.jobs,
            cache=make_cache(
                args.cache_backend,
                enabled=not args.no_cache,
                default_root=Path(args.cache_dir) if args.cache_dir else None,
            ),
            events=events,
        )

    benchmarks = _parse_benchmarks(args.benchmarks)
    try:
        outcome = explore(
            points,
            scale=args.scale,
            benchmarks=benchmarks,
            runner=runner,
            surrogate=args.surrogate,
            surrogate_keep=args.surrogate_keep,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    finally:
        runner.close()
        events.close()

    results = list(outcome.results)
    if outcome.pruned:
        for p in outcome.pruned:
            note = (
                f" (estimated speedup {p.estimated_speedup:.3f})"
                if p.estimated_speedup is not None
                else ""
            )
            print(
                f"pruned [{p.reason}] {p.label}: {p.detail}{note}",
                file=sys.stderr,
            )
    if outcome.surrogate is not None and outcome.surrogate.entries:
        v = outcome.surrogate
        status = "within" if v.within_bound else "EXCEEDS"
        print(
            f"surrogate cross-validation: max rel error "
            f"{v.max_rel_error:.4f} (mean {v.mean_rel_error:.4f}) "
            f"{status} documented bound {v.bound}",
            file=sys.stderr,
        )
    resolved_benchmarks = (
        [b.benchmark for b in results[0].benchmarks] if results else []
    )
    payload = report_payload(
        space,
        results,
        scale=args.scale,
        benchmarks=resolved_benchmarks,
        pruned=outcome.pruned,
        surrogate=outcome.surrogate,
    )
    text = dump_report(payload)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"sweep artifact: {args.out}", file=sys.stderr)
    if args.json:
        sys.stdout.write(text)
    else:
        print(render_table(results))
        print()
        print(render_frontier(results))
    if args.plot:
        written = plot_frontier(results, args.plot)
        if written:
            print(f"frontier plot: {written}", file=sys.stderr)
        else:
            print(
                "frontier plot skipped: matplotlib is not installed",
                file=sys.stderr,
            )
    frontier = pareto_frontier(results)
    print(
        f"{len(frontier)} of {len(results)} points on the Pareto frontier",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
