"""Data-dependence graphs and critical-path analysis."""

from repro.ddg.builder import build_ddg
from repro.ddg.critical_path import PathAnalysis, analyze, critical_path_loads
from repro.ddg.graph import DepEdge, DepKind, DependenceGraph

__all__ = [
    "DepEdge",
    "DepKind",
    "DependenceGraph",
    "PathAnalysis",
    "analyze",
    "build_ddg",
    "critical_path_loads",
]
