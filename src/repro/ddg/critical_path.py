"""Critical-path analysis of dependence graphs.

Provides the two quantities the compiler passes need:

* **earliest start times** (forward longest path) — the dependence-only
  lower bound on each operation's issue cycle, and from it the block's
  dependence-height (the schedule-length lower bound);
* **heights** (backward longest path) — the classic list-scheduling
  priority, and the means of extracting the *longest critical path*
  through the block, on which the paper selects loads for prediction
  ("code was scheduled by predicting loads on the longest critical path
  for each block").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.ddg.graph import DependenceGraph
from repro.ir.operation import Operation
from repro.machine.description import MachineDescription


@dataclass(frozen=True)
class PathAnalysis:
    """Longest-path facts about one dependence graph."""

    earliest_start: Dict[int, int]
    height: Dict[int, int]
    length: int
    critical_ops: List[int]

    def slack(self, op_id: int) -> int:
        """Cycles the op can slip without lengthening the critical path."""
        return self.length - (self.earliest_start[op_id] + self.height[op_id])

    def is_critical(self, op_id: int) -> bool:
        return self.slack(op_id) == 0


def analyze(graph: DependenceGraph, machine: MachineDescription) -> PathAnalysis:
    """Compute earliest starts, heights and the longest critical path."""
    order = graph.topological_order()

    earliest: Dict[int, int] = {}
    for op in order:
        est = 0
        for edge in graph.pred_edges(op.op_id):
            cand = earliest[edge.src] + edge.weight
            if cand > est:
                est = cand
        earliest[op.op_id] = est

    height: Dict[int, int] = {}
    for op in reversed(order):
        h = machine.latency(op.opcode)
        for edge in graph.succ_edges(op.op_id):
            cand = edge.weight + height[edge.dst]
            if cand > h:
                h = cand
        height[op.op_id] = h

    length = 0
    for op in order:
        length = max(length, earliest[op.op_id] + height[op.op_id])

    critical = [op.op_id for op in order if earliest[op.op_id] + height[op.op_id] == length]

    return PathAnalysis(
        earliest_start=earliest,
        height=height,
        length=length,
        critical_ops=critical,
    )


def critical_path_loads(
    graph: DependenceGraph, machine: MachineDescription
) -> List[Operation]:
    """Loads lying on the longest critical path, most critical first.

    "Most critical" means deepest remaining height — predicting such a
    load breaks the longest remaining chain, which is exactly the paper's
    selection rule.
    """
    analysis = analyze(graph, machine)
    loads = [
        graph.operation(op_id)
        for op_id in analysis.critical_ops
        if graph.operation(op_id).is_load
    ]
    loads.sort(key=lambda op: analysis.height[op.op_id], reverse=True)
    return loads
