"""Data-dependence graphs over the operations of one basic block.

Nodes are :class:`~repro.ir.operation.Operation` objects (identified by
``op_id``); edges carry a :class:`DepKind` and a scheduling weight in
cycles.  Flow (true) dependence edges weigh the producer's latency; anti
edges weigh zero (a VLIW reads registers before writing them in the same
cycle); output and memory-ordering edges weigh one cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ir.operation import Operation


class DepKind(enum.Enum):
    """Kinds of dependence edges."""

    FLOW = "flow"        # read-after-write through a register
    ANTI = "anti"        # write-after-read through a register
    OUTPUT = "output"    # write-after-write through a register
    MEM = "mem"          # conservative memory ordering (store involved)
    CONTROL = "control"  # everything must issue no later than the branch
    SYNC = "sync"        # verification ordering introduced by speculation:
                         # a non-speculative op may not issue before the
                         # check operations its Synchronization-register
                         # wait bits depend on


@dataclass(frozen=True, slots=True)
class DepEdge:
    """A dependence from ``src`` to ``dst`` with a minimum issue distance."""

    src: int
    dst: int
    kind: DepKind
    weight: int

    def __str__(self) -> str:
        return f"op{self.src} -[{self.kind.value}/{self.weight}]-> op{self.dst}"


class DependenceGraph:
    """A DAG of dependences among a block's operations."""

    def __init__(self, operations: List[Operation]):
        self._ops: Dict[int, Operation] = {op.op_id: op for op in operations}
        self._order: List[int] = [op.op_id for op in operations]
        self._succs: Dict[int, List[DepEdge]] = {i: [] for i in self._order}
        self._preds: Dict[int, List[DepEdge]] = {i: [] for i in self._order}

    # -- construction -------------------------------------------------------

    def add_edge(self, src: Operation, dst: Operation, kind: DepKind, weight: int) -> None:
        if src.op_id == dst.op_id:
            raise ValueError("self-dependence is not allowed")
        if src.op_id not in self._ops or dst.op_id not in self._ops:
            raise KeyError("both endpoints must be operations of this block")
        # Keep only the strongest constraint between a pair for a kind —
        # duplicates with lower weight add nothing to the scheduler.
        for edge in self._succs[src.op_id]:
            if edge.dst == dst.op_id and edge.kind is kind:
                if edge.weight >= weight:
                    return
                self._succs[src.op_id].remove(edge)
                self._preds[dst.op_id] = [
                    e for e in self._preds[dst.op_id]
                    if not (e.src == src.op_id and e.kind is kind)
                ]
                break
        edge = DepEdge(src.op_id, dst.op_id, kind, weight)
        self._succs[src.op_id].append(edge)
        self._preds[dst.op_id].append(edge)

    # -- queries ----------------------------------------------------------

    @property
    def operations(self) -> List[Operation]:
        return [self._ops[i] for i in self._order]

    def operation(self, op_id: int) -> Operation:
        return self._ops[op_id]

    def successors(self, op_id: int) -> List[DepEdge]:
        return list(self._succs[op_id])

    def predecessors(self, op_id: int) -> List[DepEdge]:
        return list(self._preds[op_id])

    def succ_edges(self, op_id: int) -> List[DepEdge]:
        """The successor edge list itself, *not* a copy — read-only.

        The list scheduler and critical-path analysis walk every edge of
        every block of every sweep point; the defensive copies of
        :meth:`successors` are measurable there.  Callers must not
        mutate the returned list.
        """
        return self._succs[op_id]

    def pred_edges(self, op_id: int) -> List[DepEdge]:
        """Read-only view of the predecessor edge list (see
        :meth:`succ_edges`)."""
        return self._preds[op_id]

    def edges(self) -> Iterator[DepEdge]:
        for op_id in self._order:
            yield from self._succs[op_id]

    def flow_predecessors(self, op_id: int) -> List[int]:
        """Producers this operation truly consumes values from."""
        return [e.src for e in self._preds[op_id] if e.kind is DepKind.FLOW]

    def flow_successors(self, op_id: int) -> List[int]:
        return [e.dst for e in self._succs[op_id] if e.kind is DepKind.FLOW]

    def roots(self) -> List[Operation]:
        """Operations with no predecessors (ready at cycle zero)."""
        return [self._ops[i] for i in self._order if not self._preds[i]]

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, op_id: int) -> bool:
        return op_id in self._ops

    # -- transitive closure over flow edges ------------------------------

    def flow_reachable_from(self, sources: List[int]) -> set[int]:
        """Operation ids transitively flow-dependent on any of ``sources``.

        The speculation pass uses this to find every operation whose value
        is (directly or indirectly) derived from a predicted load.
        """
        seen: set[int] = set()
        stack = list(sources)
        while stack:
            op_id = stack.pop()
            for succ in self.flow_successors(op_id):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    # -- interop -----------------------------------------------------------

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (visualisation, analysis)."""
        import networkx as nx

        g = nx.DiGraph()
        for op in self.operations:
            g.add_node(op.op_id, operation=op)
        for edge in self.edges():
            g.add_edge(edge.src, edge.dst, kind=edge.kind.value, weight=edge.weight)
        return g

    def topological_order(self) -> List[Operation]:
        """Operations in a dependence-respecting order.

        Program order is already topological because edges only ever point
        from earlier to later operations in the block.
        """
        return self.operations
