"""Construction of data-dependence graphs from basic blocks.

Register dependences are exact (def-use chains within the block); memory
dependences are *conservative* by default, exactly as the paper laments
for VLIW compilers: every store orders against every subsequent memory
operation and every load orders against every subsequent store.  Loads
are free to reorder among themselves.

``disambiguate=True`` enables the one disambiguation a compiler can do
without pointer analysis inside a block: two accesses through the *same
base register* with *different static offsets* cannot alias as long as
the base has not been redefined between them, so no ordering edge is
needed.  The ablation benchmarks quantify how much of value prediction's
benefit this conventional technique can and cannot recover.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.block import BasicBlock
from repro.ir.operation import Operation, Reg
from repro.machine.description import MachineDescription
from repro.ddg.graph import DepKind, DependenceGraph


def _may_alias(a, b) -> bool:
    """Conservative may-alias for two memory ops tagged with
    (base register, base-definition epoch, offset)."""
    (base_a, epoch_a, off_a) = a
    (base_b, epoch_b, off_b) = b
    if base_a == base_b and epoch_a == epoch_b:
        return off_a == off_b
    return True  # different bases: unknown, assume alias


def build_ddg(
    block: BasicBlock,
    machine: MachineDescription,
    disambiguate: bool = False,
) -> DependenceGraph:
    """Build the dependence graph of ``block`` under ``machine`` latencies."""
    ops = block.operations
    graph = DependenceGraph(ops)

    last_def: Dict[Reg, Operation] = {}
    last_uses: Dict[Reg, list[Operation]] = {}
    last_store: Optional[Operation] = None
    mem_ops_since_store: list[Operation] = []
    # For disambiguation: per-op (base, base-def epoch, offset) address
    # tags; a base register's epoch bumps whenever it is redefined.
    base_epoch: Dict[Reg, int] = {}
    addr_tag: Dict[int, tuple] = {}
    all_mem_ops: list[Operation] = []

    def tag_of(op: Operation) -> tuple:
        base = op.srcs[-1] if op.is_store else op.srcs[0]
        return (base, base_epoch.get(base, 0), op.offset)

    for op in ops:
        uses = list(op.uses())
        defs = list(op.defs())
        # Register flow dependences: use after the most recent def.
        for reg in uses:
            producer = last_def.get(reg)
            if producer is not None:
                graph.add_edge(producer, op, DepKind.FLOW, machine.latency(producer.opcode))

        # Register anti/output dependences.
        for reg in defs:
            for reader in last_uses.get(reg, ()):
                if reader.op_id != op.op_id:
                    graph.add_edge(reader, op, DepKind.ANTI, 0)
            prior = last_def.get(reg)
            if prior is not None:
                graph.add_edge(prior, op, DepKind.OUTPUT, 1)

        # Memory ordering.
        if op.is_memory and disambiguate:
            addr_tag[op.op_id] = tag_of(op)
            for earlier in all_mem_ops:
                if not (earlier.is_store or op.is_store):
                    continue  # load-load never orders
                if not _may_alias(addr_tag[earlier.op_id], addr_tag[op.op_id]):
                    continue
                weight = (
                    machine.latency(earlier.opcode) if earlier.is_store else 1
                )
                graph.add_edge(earlier, op, DepKind.MEM, weight)
            all_mem_ops.append(op)
        elif op.is_memory:
            if last_store is not None:
                graph.add_edge(last_store, op, DepKind.MEM, machine.latency(last_store.opcode))
            if op.is_store:
                for mem_op in mem_ops_since_store:
                    graph.add_edge(mem_op, op, DepKind.MEM, 1)
                last_store = op
                mem_ops_since_store = []
            else:
                mem_ops_since_store.append(op)

        # The terminating branch must not issue before any other op.
        if op.is_branch:
            for other in ops:
                if other.op_id != op.op_id:
                    graph.add_edge(other, op, DepKind.CONTROL, 0)

        # Bookkeeping after edges are drawn.
        for reg in uses:
            last_uses.setdefault(reg, []).append(op)
        for reg in defs:
            last_def[reg] = op
            last_uses[reg] = []
            if disambiguate:
                base_epoch[reg] = base_epoch.get(reg, 0) + 1

    return graph
