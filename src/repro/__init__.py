"""repro — a reproduction of "Value Prediction in VLIW Machines"
(Tarun Nakra, Rajiv Gupta, Mary Lou Soffa; ISCA 1999).

The package is a complete VLIW compiler-and-simulator stack built from
scratch in Python:

* :mod:`repro.ir` — the intermediate representation (a Trimaran/Elcor
  stand-in): operations, basic blocks, functions, programs.
* :mod:`repro.machine` — HPL-PD/Playdoh-style machine descriptions.
* :mod:`repro.ddg` — data-dependence graphs and critical-path analysis.
* :mod:`repro.sched` — resource-constrained list scheduling.
* :mod:`repro.predict` — value predictors: last-value, stride, FCM,
  hybrid; the hardware value-prediction table; confidence estimation.
* :mod:`repro.profiling` — architectural execution, block-frequency and
  value profiling.
* :mod:`repro.core` — the paper's contribution: the value-speculation
  compiler pass (LdPred / check-prediction / speculative /
  non-speculative forms, Synchronization register) and the dual-engine
  run-time model (VLIW Engine + Compensation Code Engine with its CCB
  and OVB), plus the statically-recovered baseline of the paper's
  reference [4].
* :mod:`repro.workloads` — eight synthetic SPEC95 stand-ins with
  controlled value predictability, plus a random-program generator.
* :mod:`repro.evaluation` — drivers that regenerate every table and
  figure of the paper's evaluation section.
* :mod:`repro.opt` — classical block-local optimisations (constant
  folding, copy propagation, dead-code elimination).
* :mod:`repro.regions` — superblock-style region enlargement
  (straight-line merging, loop unrolling with register renaming).
* :mod:`repro.compiler` — the pass-pipeline driver: a registry of
  named passes, a declarative (serializable, content-hashable)
  :class:`~repro.compiler.PipelineConfig`, and the
  :class:`~repro.compiler.PassManager` that runs it with inter-pass
  IR verification and per-pass metrics.
* :mod:`repro.runner` — parallel, disk-cached experiment execution;
  job cache keys incorporate the pipeline config.
* :mod:`repro.obs` — metrics, structured tracing, Perfetto export.
* :mod:`repro.tools` — the ``repro-inspect`` command-line tool.

Quickstart::

    from repro.machine import PLAYDOH_4W
    from repro.profiling import profile_program
    from repro.compiler import compile_program
    from repro.core import simulate_program
    from repro.workloads import load_benchmark

    program = load_benchmark("compress")
    profile = profile_program(program)
    compilation = compile_program(program, PLAYDOH_4W, profile)
    result = simulate_program(compilation)
    print(f"speedup over no prediction: {result.speedup_proposed:.3f}")

Non-standard pipelines are declared, not hand-stitched::

    from repro.compiler import PassManager, standard_pipeline

    pipeline = standard_pipeline(optimize=True, unroll=("loop", 2))
    compilation = PassManager(pipeline).run(program, PLAYDOH_4W, None)

``python -m repro.compiler list`` prints the resolved pass order and
per-pass options; ``python -m repro.compiler digest`` emits a stable
content hash of every benchmark's compilation (the CI determinism
check).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
