"""repro — a reproduction of "Value Prediction in VLIW Machines"
(Tarun Nakra, Rajiv Gupta, Mary Lou Soffa; ISCA 1999).

The package is a complete VLIW compiler-and-simulator stack built from
scratch in Python:

* :mod:`repro.ir` — the intermediate representation (a Trimaran/Elcor
  stand-in): operations, basic blocks, functions, programs.
* :mod:`repro.machine` — HPL-PD/Playdoh-style machine descriptions.
* :mod:`repro.ddg` — data-dependence graphs and critical-path analysis.
* :mod:`repro.sched` — resource-constrained list scheduling.
* :mod:`repro.predict` — value predictors: last-value, stride, FCM,
  hybrid; the hardware value-prediction table; confidence estimation.
* :mod:`repro.profiling` — architectural execution, block-frequency and
  value profiling.
* :mod:`repro.core` — the paper's contribution: the value-speculation
  compiler pass (LdPred / check-prediction / speculative /
  non-speculative forms, Synchronization register) and the dual-engine
  run-time model (VLIW Engine + Compensation Code Engine with its CCB
  and OVB), plus the statically-recovered baseline of the paper's
  reference [4].
* :mod:`repro.workloads` — eight synthetic SPEC95 stand-ins with
  controlled value predictability, plus a random-program generator.
* :mod:`repro.evaluation` — drivers that regenerate every table and
  figure of the paper's evaluation section.
* :mod:`repro.opt` — classical block-local optimisations (constant
  folding, copy propagation, dead-code elimination).
* :mod:`repro.regions` — superblock-style region enlargement
  (straight-line merging, loop unrolling with register renaming).
* :mod:`repro.tools` — the ``repro-inspect`` command-line tool.

Quickstart::

    from repro.machine import PLAYDOH_4W
    from repro.profiling import profile_program
    from repro.core import compile_program, simulate_program
    from repro.workloads import load_benchmark

    program = load_benchmark("compress")
    profile = profile_program(program)
    compilation = compile_program(program, PLAYDOH_4W, profile)
    result = simulate_program(compilation)
    print(f"speedup over no prediction: {result.speedup_proposed:.3f}")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
