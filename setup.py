"""Setup shim.

The environment has no `wheel` package (and no network to fetch one), so
PEP 517 editable installs fail with `invalid command 'bdist_wheel'`.
This shim lets `pip install -e . --no-build-isolation` take the legacy
`setup.py develop` path, which needs only setuptools.  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
