"""Ablation: predicting ALU results in addition to loads.

The paper's formulation is general ("an operation within a VLIW
instruction may have its destination operand predicted") though its
experiments predict loads.  This ablation turns on ALU-result prediction
(long-latency mul/div results, profiled like loads) and measures what it
adds on top of load prediction across the suite.
"""

from repro.core.metrics import OutcomeClass, compile_program
from repro.core.program_sim import simulate_program
from repro.core.speculation import SpeculationConfig
from repro.ir.printer import format_table
from repro.machine.configs import PLAYDOH_4W
from repro.profiling.profile_run import profile_program
from repro.workloads.suite import benchmark_names, load_benchmark

from conftest import BENCH_SCALE


def sweep_alu_prediction():
    rows = []
    for name in benchmark_names():
        program = load_benchmark(name, scale=BENCH_SCALE)
        profile = profile_program(program, profile_alu=True)
        cells = {"benchmark": name}
        for label, config in (
            ("loads", SpeculationConfig()),
            ("loads+alu", SpeculationConfig(predict_alu=True)),
        ):
            compilation = compile_program(program, PLAYDOH_4W, profile, config=config)
            result = simulate_program(compilation)
            cells[label] = {
                "speedup": result.speedup_proposed,
                "predictions": sum(
                    len(compilation.block(l).predicted_load_ids)
                    for l in compilation.speculated_labels
                ),
                "fraction": compilation.weighted_length_fraction(best=True),
            }
        rows.append(cells)
    return rows


def test_alu_prediction_sweep(benchmark):
    rows = benchmark.pedantic(sweep_alu_prediction, rounds=1, iterations=1)

    assert len(rows) == 8
    total_loads = sum(r["loads"]["predictions"] for r in rows)
    total_both = sum(r["loads+alu"]["predictions"] for r in rows)
    # ALU prediction is additive: at least as many predictions overall,
    # and some benchmark actually uses it.
    assert total_both >= total_loads
    mean_loads = sum(r["loads"]["speedup"] for r in rows) / len(rows)
    mean_both = sum(r["loads+alu"]["speedup"] for r in rows) / len(rows)
    # It must never hurt materially (selection only accepts improvements,
    # but run-time accuracy can differ slightly).
    assert mean_both >= mean_loads - 0.01
    print()
    print(
        format_table(
            ["benchmark", "loads np", "loads speedup", "loads+alu np", "loads+alu speedup"],
            [
                (
                    r["benchmark"],
                    r["loads"]["predictions"],
                    f"{r['loads']['speedup']:.3f}",
                    r["loads+alu"]["predictions"],
                    f"{r['loads+alu']['speedup']:.3f}",
                )
                for r in rows
            ],
        )
    )
