"""The runner's two headline wins, measured on the real 8-benchmark suite.

1. **Parallel cold run** — with ``--jobs 4`` the pipeline job graph
   (8 benchmarks x build/profile/compile/simulate) finishes faster than
   strictly serial execution.  This is only asserted on multi-core
   hosts: on a single CPU, process-pool scheduling is pure overhead and
   the comparison would measure the machine, not the runner.
2. **Warm cache** — a fully cached ``all``-experiments run executes
   *zero* pipeline jobs (every stage served from disk), verified
   through the events log rather than timing, so it holds on any host.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import BENCH_SCALE, runner_evaluation


def _cold_warm_time(cache_root, jobs: int, experiments):
    evaluation, runner = runner_evaluation(cache_root, jobs=jobs)
    with runner:
        t0 = time.perf_counter()
        evaluation.warm(experiments)
        elapsed = time.perf_counter() - t0
    return elapsed, runner.events.summary()


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel speedup is only observable with more than one CPU",
)
def test_jobs4_cold_run_beats_serial(tmp_path):
    serial_time, serial_summary = _cold_warm_time(
        tmp_path / "serial", jobs=1, experiments=["table2", "table4"]
    )
    parallel_time, parallel_summary = _cold_warm_time(
        tmp_path / "parallel", jobs=4, experiments=["table2", "table4"]
    )
    # Identical job graphs, both cold.
    assert parallel_summary["executed"] == serial_summary["executed"]
    assert parallel_time < serial_time


def test_warm_all_run_executes_zero_jobs(tmp_path):
    cache = tmp_path / "cache"
    cold_time, cold = _cold_warm_time(cache, jobs=1, experiments=None)
    assert cold["executed"] > 0

    warm_time, warm = _cold_warm_time(cache, jobs=1, experiments=None)
    assert warm["executed"] == 0
    assert warm["executed_by_stage"] == {}
    assert warm["cache_hits"] == cold["executed"]
    # Reading pickles must be much cheaper than re-running the pipeline.
    assert warm_time < cold_time


def test_threshold_sweep_shares_profiles(tmp_path):
    """An ablation at a different threshold re-runs compile/simulate but
    serves build/profile — the expensive interpreter runs — from cache."""
    from repro.evaluation.experiment import Evaluation, EvaluationSettings
    from repro.runner import DiskCache, Runner

    cache = tmp_path / "cache"
    base = EvaluationSettings(scale=BENCH_SCALE)
    with Runner(jobs=1, cache=DiskCache(root=cache)) as first:
        Evaluation(base, runner=first).warm(["table2"])

    with Runner(jobs=1, cache=DiskCache(root=cache)) as second:
        Evaluation(base.with_threshold(0.9), runner=second).warm(["table2"])
        by_stage = second.events.summary()["executed_by_stage"]
    assert by_stage.get("build", 0) == 0
    assert by_stage.get("profile", 0) == 0
    assert by_stage.get("compile", 0) > 0
