"""The runner's two headline wins, measured on the real 8-benchmark suite.

1. **Parallel cold run** — with ``--jobs 4`` the pipeline job graph
   (8 benchmarks x build/profile/compile/simulate) finishes faster than
   strictly serial execution.  This is only asserted on multi-core
   hosts: on a single CPU, process-pool scheduling is pure overhead and
   the comparison would measure the machine, not the runner.
2. **Warm cache** — a fully cached ``all``-experiments run executes
   *zero* pipeline jobs (every stage served from disk), verified
   through the events log rather than timing, so it holds on any host.

Timings route through :func:`repro.bench.harness.measure` (the same
warmup/repeats/robust-stats primitive ``repro-bench run`` uses), and
each test emits a machine-readable ``BENCH_*.json`` artifact into its
tmp dir — or into ``$REPRO_BENCH_DIR`` when set, so a CI job can
collect runner-scaling numbers straight from the benchmark suite.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from conftest import BENCH_SCALE, runner_evaluation

from repro.bench.harness import BenchConfig, make_artifact, measure, scenario_entry
from repro.bench.harness import load_artifact, write_artifact
from repro.bench.scenarios import ScenarioRun


def _artifact_dir(tmp_path) -> Path:
    return Path(os.environ.get("REPRO_BENCH_DIR", tmp_path))


def _emit(tmp_path, scenarios) -> Path:
    """Write (and round-trip-check) a BENCH artifact for one test."""
    config = BenchConfig(
        preset="runner-scaling",
        workload_scale=BENCH_SCALE,
        repeats=1,
        warmup=0,
    )
    path = write_artifact(make_artifact(config, scenarios), _artifact_dir(tmp_path))
    assert load_artifact(path)["scenarios"].keys() == scenarios.keys()
    return path


def _cold_warm_run(cache_root, jobs: int, experiments):
    evaluation, runner = runner_evaluation(cache_root, jobs=jobs)
    with runner:
        evaluation.warm(experiments)
        summary = runner.events.summary()
    return ScenarioRun(
        counters={"jobs_executed": float(summary["executed"])},
        extra={"runner": summary},
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel speedup is only observable with more than one CPU",
)
def test_jobs4_cold_run_beats_serial(tmp_path):
    serial = measure(
        lambda: _cold_warm_run(
            tmp_path / "serial", jobs=1, experiments=["table2", "table4"]
        ),
        repeats=1,
        warmup=0,
    )
    parallel = measure(
        lambda: _cold_warm_run(
            tmp_path / "parallel", jobs=4, experiments=["table2", "table4"]
        ),
        repeats=1,
        warmup=0,
    )
    _emit(
        tmp_path,
        {
            "runner_cold_serial": scenario_entry(
                serial.stats, serial.results, subsystems=("runner",)
            ),
            "runner_cold_jobs4": scenario_entry(
                parallel.stats, parallel.results, subsystems=("runner",)
            ),
        },
    )
    # Identical job graphs, both cold.
    serial_summary = serial.results[0].extra["runner"]
    parallel_summary = parallel.results[0].extra["runner"]
    assert parallel_summary["executed"] == serial_summary["executed"]
    assert parallel.stats.median < serial.stats.median


def test_warm_all_run_executes_zero_jobs(tmp_path):
    cache = tmp_path / "cache"
    cold = measure(
        lambda: _cold_warm_run(cache, jobs=1, experiments=None),
        repeats=1,
        warmup=0,
    )
    cold_summary = cold.results[0].extra["runner"]
    assert cold_summary["executed"] > 0

    warm = measure(
        lambda: _cold_warm_run(cache, jobs=1, experiments=None),
        repeats=1,
        warmup=0,
    )
    warm_summary = warm.results[0].extra["runner"]
    path = _emit(
        tmp_path,
        {
            "runner_cold": scenario_entry(
                cold.stats, cold.results, subsystems=("runner",)
            ),
            "runner_warm": scenario_entry(
                warm.stats, warm.results, subsystems=("runner",)
            ),
        },
    )
    artifact = load_artifact(path)
    assert artifact["scenarios"]["runner_warm"]["wall_s"]["n"] == 1

    assert warm_summary["executed"] == 0
    assert warm_summary["executed_by_stage"] == {}
    assert warm_summary["cache_hits"] == cold_summary["executed"]
    # Reading pickles must be much cheaper than re-running the pipeline.
    assert warm.stats.median < cold.stats.median


def test_threshold_sweep_shares_profiles(tmp_path):
    """An ablation at a different threshold re-runs compile/simulate but
    serves build/profile — the expensive interpreter runs — from cache."""
    from repro.evaluation.experiment import Evaluation, EvaluationSettings
    from repro.runner import DiskCache, Runner

    cache = tmp_path / "cache"
    base = EvaluationSettings(scale=BENCH_SCALE)
    with Runner(jobs=1, cache=DiskCache(root=cache)) as first:
        Evaluation(base, runner=first).warm(["table2"])

    with Runner(jobs=1, cache=DiskCache(root=cache)) as second:
        Evaluation(base.with_threshold(0.9), runner=second).warm(["table2"])
        by_stage = second.events.summary()["executed_by_stage"]
    assert by_stage.get("build", 0) == 0
    assert by_stage.get("profile", 0) == 0
    assert by_stage.get("compile", 0) > 0
