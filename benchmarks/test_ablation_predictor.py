"""Ablation: the run-time value predictor (stride vs FCM vs hybrid).

The compiler always selects loads by best-of(stride, FCM) profile rates
(the paper's method); this ablation swaps the *hardware* predictor the
Value Prediction Table uses at run time, showing why the hybrid is the
right default: the suite contains both stride-friendly (arrays,
pointers) and FCM-friendly (instruction words, tags) value streams.
"""

from repro.core.program_sim import simulate_program
from repro.ir.printer import format_table
from repro.predict.fcm import FCMPredictor
from repro.predict.hybrid import default_hybrid
from repro.predict.last_value import LastValuePredictor
from repro.predict.stride import StridePredictor

from conftest import fresh_evaluation

PREDICTORS = {
    "last-value": LastValuePredictor,
    "stride": StridePredictor,
    "fcm": FCMPredictor,
    "hybrid": default_hybrid,
}


def sweep_predictors():
    evaluation = fresh_evaluation()
    results = {}
    for label, factory in PREDICTORS.items():
        predictions = 0
        correct = 0
        total_proposed = 0
        total_nopred = 0
        for name in evaluation.benchmarks:
            comp = evaluation.compilation(name, evaluation.machine_4w)
            sim = simulate_program(comp, predictor=factory())
            predictions += sim.predictions
            correct += sim.predictions - sim.mispredictions
            total_proposed += sim.cycles_proposed
            total_nopred += sim.cycles_nopred
        results[label] = {
            "accuracy": correct / predictions if predictions else 0.0,
            "speedup": total_nopred / total_proposed,
        }
    return results


def test_predictor_sweep(benchmark):
    results = benchmark.pedantic(sweep_predictors, rounds=1, iterations=1)

    # The hybrid never loses materially to either component...
    assert results["hybrid"]["accuracy"] >= results["stride"]["accuracy"] - 0.03
    assert results["hybrid"]["accuracy"] >= results["fcm"]["accuracy"] - 0.03
    # ...and the suite genuinely needs both: each pure component beats
    # the other on some benchmarks, so neither dominates by a wide margin.
    assert abs(results["stride"]["accuracy"] - results["fcm"]["accuracy"]) < 0.45
    # All predictors still deliver an overall win (selection was gated on
    # profiled predictability).
    for label, row in results.items():
        assert row["speedup"] > 0.95, label
    print()
    print(
        format_table(
            ["predictor", "accuracy", "suite speedup"],
            [
                (label, f"{row['accuracy']:.3f}", f"{row['speedup']:.3f}")
                for label, row in results.items()
            ],
        )
    )
