"""Shared fixtures for the benchmark harness.

Each ``test_table*.py`` / ``test_figure8.py`` module regenerates one
table or figure of the paper and asserts its *shape* (who wins, by
roughly what factor) while pytest-benchmark times the regeneration.

``BENCH_SCALE`` shrinks the workloads so a full ``pytest benchmarks/
--benchmark-only`` run stays interactive; the shapes are stable from
scale 0.4 upward (below that, value profiles have not warmed up enough
for the paper's 0.65 threshold).
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiment import Evaluation, EvaluationSettings

BENCH_SCALE = 0.4


def fresh_evaluation(scale: float = BENCH_SCALE) -> Evaluation:
    return Evaluation(EvaluationSettings(scale=scale))


def runner_evaluation(cache_root, jobs: int = 1, scale: float = BENCH_SCALE):
    """An evaluation backed by a repro.runner Runner with its own cache.

    Returns ``(evaluation, runner)``; the caller owns ``runner.close()``.
    """
    from repro.runner import DiskCache, Runner

    runner = Runner(jobs=jobs, cache=DiskCache(root=cache_root))
    return Evaluation(EvaluationSettings(scale=scale), runner=runner), runner


@pytest.fixture
def evaluation():
    """A fresh (cold-cache) evaluation per benchmark round."""
    return fresh_evaluation()


@pytest.fixture(scope="session")
def warm_evaluation():
    """A shared evaluation for shape assertions that should not pay the
    pipeline cost repeatedly."""
    return fresh_evaluation()
