"""Ablation: static memory disambiguation vs value prediction.

The paper motivates value prediction partly with the VLIW compiler's
conservatively computed memory dependences.  A natural question: how much
of the win could conventional static disambiguation (same-base,
different-offset proofs) deliver *without* any prediction hardware?

Measured per speculated block, weighted by execution frequency:
original schedule with conservative memory edges, the same with
disambiguation, and the speculative schedule.  The asserted shape is the
motivating one: disambiguation alone recovers strictly less than value
prediction does, because prediction breaks *true* data dependences that
no amount of alias reasoning can remove.
"""

from repro.core.machine_sim import simulate_best_case
from repro.core.specsched import schedule_speculative
from repro.core.speculation import transform_block
from repro.ddg.builder import build_ddg
from repro.ir.builder import FunctionBuilder
from repro.ir.printer import format_table
from repro.sched.list_scheduler import ListScheduler

from conftest import fresh_evaluation


def _microkernel_row(machine):
    """A block where both techniques have something to do: an early
    store conservatively blocks a later (provably disjoint) load that
    heads a long dependent chain."""
    fb = FunctionBuilder("micro")
    fb.block("entry")
    fb.mov("p", 1000)
    fb.store("acc", "p", offset=0)       # conservative barrier
    load = fb.load("a", "p", offset=8)   # disjoint: offset differs
    fb.add("b", "a", 1)
    fb.mul("c", "b", "b")
    fb.add("d", "c", 7)
    fb.store("d", "p", offset=16)
    fb.halt()
    block = fb.build().block("entry")
    scheduler = ListScheduler(machine)
    conservative = scheduler.schedule_block(block).length
    disambiguated = scheduler.schedule_graph(
        "micro", build_ddg(block, machine, disambiguate=True)
    ).length
    spec = transform_block(block, machine, [load])
    sched = schedule_speculative(spec, machine, original_length=conservative)
    speculative = simulate_best_case(sched).effective_length
    return {
        "benchmark": "microkernel",
        "disambiguation_fraction": disambiguated / conservative,
        "prediction_fraction": speculative / conservative,
    }


def sweep_disambiguation():
    evaluation = fresh_evaluation()
    machine = evaluation.machine_4w
    scheduler = ListScheduler(machine)
    rows = []
    for name in evaluation.benchmarks:
        comp = evaluation.compilation(name, machine)
        profile = evaluation.profile(name)
        conservative = disambiguated = speculative = 0.0
        for label in comp.speculated_labels:
            weight = profile.blocks.count(label)
            if weight == 0:
                continue
            block = comp.program.main.block(label)
            block_comp = comp.block(label)
            conservative += weight * block_comp.original_length
            precise_graph = build_ddg(block, machine, disambiguate=True)
            disambiguated += weight * scheduler.schedule_graph(
                label, precise_graph
            ).length
            speculative += weight * block_comp.best_case().effective_length
        rows.append(
            {
                "benchmark": name,
                "disambiguation_fraction": disambiguated / conservative,
                "prediction_fraction": speculative / conservative,
            }
        )
    rows.append(_microkernel_row(machine))
    return rows


def test_disambiguation_vs_prediction(benchmark):
    rows = benchmark.pedantic(sweep_disambiguation, rounds=1, iterations=1)

    assert len(rows) == 9
    for row in rows:
        # Disambiguation never hurts and never beats prediction's
        # best case on this suite (prediction breaks true dependences).
        assert row["disambiguation_fraction"] <= 1.0 + 1e-9
        assert row["prediction_fraction"] <= row["disambiguation_fraction"] + 1e-9
    mean_disambiguation = sum(r["disambiguation_fraction"] for r in rows) / len(rows)
    mean_prediction = sum(r["prediction_fraction"] for r in rows) / len(rows)
    assert mean_prediction < mean_disambiguation
    # The crafted microkernel shows the full hierarchy: disambiguation
    # recovers some cycles, prediction recovers strictly more.
    micro = rows[-1]
    assert micro["disambiguation_fraction"] < 1.0
    assert micro["prediction_fraction"] < micro["disambiguation_fraction"]
    print()
    print(
        format_table(
            ["benchmark", "disambiguation only", "value prediction"],
            [
                (
                    r["benchmark"],
                    f"{r['disambiguation_fraction']:.2f}",
                    f"{r['prediction_fraction']:.2f}",
                )
                for r in rows
            ],
        )
    )
