"""Regenerate Table 2: execution-time fractions of speculated blocks.

Paper shape asserted: about half the execution time is spent in blocks
where every prediction was correct; all-incorrect blocks account for a
very small fraction.
"""

from repro.evaluation import table2
from repro.evaluation.experiment import arithmetic_mean

from conftest import fresh_evaluation


def run_table2():
    evaluation = fresh_evaluation()
    return table2.compute(evaluation)


def test_regenerate_table2(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=2, iterations=1)

    assert len(rows) == 8
    best = arithmetic_mean([r.best_case_fraction for r in rows])
    worst = arithmetic_mean([r.worst_case_fraction for r in rows])
    # "on average the benchmarks spent half of the overall time in blocks
    # where all predictions were made correctly"
    assert 0.35 <= best <= 0.70
    # "account for a very small fraction of the overall execution time"
    assert worst <= 0.15
    assert best > 3 * worst
    print()
    print(table2.render(rows))
