"""Regenerate the recovery-scheme comparison against [4].

Paper shapes asserted: compensation code occupies a significant share of
baseline time versus a negligible share for the proposed architecture,
and the proposed machine is at least as fast on every benchmark.
"""

from repro.evaluation import baseline_cmp
from repro.evaluation.experiment import arithmetic_mean

from conftest import fresh_evaluation


def run_baseline_cmp():
    return baseline_cmp.compute(fresh_evaluation())


def test_regenerate_baseline_comparison(benchmark):
    rows = benchmark.pedantic(run_baseline_cmp, rounds=1, iterations=1)

    assert len(rows) == 8
    for row in rows:
        assert row.cycles_proposed <= row.cycles_baseline
        assert row.proposed_speedup >= row.baseline_speedup
        # Selective parallel recovery also beats restart-the-block squash.
        assert row.proposed_speedup >= row.squash_speedup
    mean_baseline_overhead = arithmetic_mean(
        [r.baseline_overhead_fraction for r in rows]
    )
    mean_proposed_overhead = arithmetic_mean(
        [r.proposed_overhead_fraction for r in rows]
    )
    assert mean_baseline_overhead > 1.5 * mean_proposed_overhead
    assert mean_proposed_overhead < 0.08  # "negligible"
    print()
    print(baseline_cmp.render(rows))
