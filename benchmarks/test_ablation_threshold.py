"""Ablation: the profile prediction-rate threshold (paper uses 0.65).

Sweeps the threshold and checks the expected monotone trends: a stricter
threshold selects fewer loads and achieves higher run-time prediction
accuracy; a looser one speculates more aggressively.
"""

from repro.core.metrics import OutcomeClass
from repro.evaluation.experiment import Evaluation, EvaluationSettings
from repro.ir.printer import format_table

from conftest import BENCH_SCALE

THRESHOLDS = (0.5, 0.65, 0.8, 0.95)


def _static_predictions(comp) -> int:
    return sum(
        len(comp.block(label).predicted_load_ids) for label in comp.speculated_labels
    )


def sweep_thresholds():
    rows = []
    for threshold in THRESHOLDS:
        settings = EvaluationSettings(scale=BENCH_SCALE).with_threshold(threshold)
        evaluation = Evaluation(settings)
        predictions = 0
        correct = 0
        eligible = 0
        speedups = []
        for name in evaluation.benchmarks:
            profile = evaluation.profile(name)
            eligible += len(profile.values.predictable_loads(threshold))
            sim = evaluation.simulation(name, evaluation.machine_4w)
            predictions += sim.predictions
            correct += sim.predictions - sim.mispredictions
            speedups.append(sim.speedup_proposed)
        rows.append(
            {
                "threshold": threshold,
                "eligible_loads": eligible,
                "dynamic_predictions": predictions,
                "accuracy": correct / predictions if predictions else 1.0,
                "mean_speedup": sum(speedups) / len(speedups),
            }
        )
    return rows


def test_threshold_sweep(benchmark):
    rows = benchmark.pedantic(sweep_thresholds, rounds=1, iterations=1)

    # The eligible candidate pool shrinks monotonically with the
    # threshold (the greedy selection itself can pick slightly different
    # sets, so dynamic counts are compared only loosely end to end).
    for lo, hi in zip(rows, rows[1:]):
        assert hi["eligible_loads"] <= lo["eligible_loads"]
    assert rows[-1]["dynamic_predictions"] <= rows[0]["dynamic_predictions"]
    # The strictest threshold achieves the best accuracy.
    accuracies = [r["accuracy"] for r in rows if r["dynamic_predictions"]]
    assert accuracies[-1] == max(accuracies)
    # The paper's 0.65 operating point actually speculates.
    operating = next(r for r in rows if r["threshold"] == 0.65)
    assert operating["dynamic_predictions"] > 0
    assert operating["mean_speedup"] > 1.0
    print()
    print(
        format_table(
            ["threshold", "eligible loads", "dynamic predictions", "accuracy", "mean speedup"],
            [
                (
                    f"{r['threshold']:.2f}",
                    r["eligible_loads"],
                    r["dynamic_predictions"],
                    f"{r['accuracy']:.3f}",
                    f"{r['mean_speedup']:.3f}",
                )
                for r in rows
            ],
        )
    )
