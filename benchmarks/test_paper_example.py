"""Regenerate the worked example of Figures 2/3/7.

Shapes asserted are the paper's own statements about its example: the
speculative schedule is shorter; the r4-mispredict and both-mispredict
scenarios behave identically; the r7 scenario matches their length.
"""

from repro.evaluation.paper_example import run_example


def test_regenerate_paper_example(benchmark):
    example = benchmark.pedantic(run_example, rounds=5, iterations=1)

    assert example.spec_schedule.length < example.original_schedule.length
    runs = example.scenarios
    assert runs["both correct"].effective_length == example.spec_schedule.length
    assert (
        runs["r4 mispredicted"].effective_length
        == runs["both mispredicted"].effective_length
    )
    assert (
        runs["r7 mispredicted"].effective_length
        == runs["r4 mispredicted"].effective_length
    )
    assert runs["r4 mispredicted"].executed == 4
    assert runs["r7 mispredicted"].executed == 2
