"""Region-size ablation (the paper's superblock expectation, quantified).

Asserted shapes: the serial-chain benchmark (li's pointer chase) improves
its best-case schedule fraction as the region grows, while at least half
the independent-iteration loops show the dilution effect (unrolling
harvests the ILP before prediction can claim it).
"""

from repro.evaluation import regions_exp

from conftest import fresh_evaluation


def run_regions():
    # Full scale: the validation step rejects unroll factors that do not
    # divide the trip count, and trip counts at fractional scales often
    # are not divisible by 4.
    return regions_exp.compute(fresh_evaluation(scale=1.0))


def test_region_size_study(benchmark):
    rows = benchmark.pedantic(run_regions, rounds=1, iterations=1)
    by_name = {r.benchmark: r for r in rows}

    # Every benchmark got at least the 2x data point (trip counts at
    # scale 1.0 are all even).
    for row in rows:
        assert row.fractions.get(2) is not None, row.benchmark

    # The serial-chain loop behaves as the paper predicts.
    li = by_name["li"]
    assert li.serial_chain
    assert li.fractions[2] < li.fractions[1]

    # Most independent-iteration loops dilute.
    parallel = [r for r in rows if not r.serial_chain]
    diluted = sum(1 for r in parallel if r.fractions[2] > r.fractions[1])
    assert diluted >= len(parallel) // 2

    print()
    print(regions_exp.render(rows))
