"""Microbenchmarks of the substrate components.

These time the pieces downstream users build on — the interpreter, the
list scheduler, the speculation pass and the predictors — and pin basic
sanity on each result so throughput regressions and behaviour
regressions both surface here.
"""

import random

from repro.ddg.builder import build_ddg
from repro.ir.builder import FunctionBuilder
from repro.machine.configs import PLAYDOH_4W
from repro.predict.hybrid import default_hybrid
from repro.profiling.interpreter import run_program
from repro.profiling.profile_run import profile_program
from repro.sched.list_scheduler import schedule_block
from repro.core.speculation import speculate_block
from repro.workloads.suite import load_benchmark


def big_block(n_chains=8, chain_len=6):
    fb = FunctionBuilder("big")
    fb.block("entry")
    fb.mov("p", 1000)
    for c in range(n_chains):
        fb.load(f"v{c}_0", "p", offset=c)
        for i in range(1, chain_len):
            fb.add(f"v{c}_{i}", f"v{c}_{i-1}", i)
        fb.store(f"v{c}_{chain_len-1}", "p", offset=100 + c)
    fb.halt()
    return fb.build().block("entry")


def test_list_scheduler_throughput(benchmark):
    block = big_block()
    schedule = benchmark(schedule_block, block, PLAYDOH_4W)
    assert len(schedule) == len(block.operations)


def test_ddg_construction_throughput(benchmark):
    block = big_block()
    graph = benchmark(build_ddg, block, PLAYDOH_4W)
    assert len(graph) == len(block.operations)


def test_interpreter_throughput(benchmark):
    program = load_benchmark("compress", scale=0.5)
    result = benchmark(run_program, program)
    assert result.halted


def test_value_profiling_throughput(benchmark):
    program = load_benchmark("m88ksim", scale=0.5)
    profile = benchmark(profile_program, program)
    assert len(profile.values) > 0


def test_speculation_pass_throughput(benchmark):
    program = load_benchmark("vortex", scale=0.5)
    profile = profile_program(program)
    block = program.main.block("lookup")

    spec = benchmark(speculate_block, block, PLAYDOH_4W, profile.values)
    assert spec is not None


def test_hybrid_predictor_throughput(benchmark):
    rng = random.Random(0)
    stream = [(f"k{i % 7}", rng.randrange(100)) for i in range(2000)]

    def run():
        predictor = default_hybrid()
        for key, value in stream:
            predictor.observe(key, value)
        return predictor

    predictor = benchmark(run)
    assert predictor.stats.attempts == 2000
