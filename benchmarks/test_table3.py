"""Regenerate Table 3: effective/original schedule-length fractions.

Paper shape asserted: "In the best case with all correct predictions,
the schedule length reduces by about 20% on average"; in the worst case
the parallel Compensation Code Engine keeps blocks close to their
original length (nowhere near the serial-recovery blowup).
"""

from repro.evaluation import table3
from repro.evaluation.experiment import arithmetic_mean

from conftest import fresh_evaluation


def run_table3():
    return table3.compute(fresh_evaluation())


def test_regenerate_table3(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=2, iterations=1)

    assert len(rows) == 8
    best = arithmetic_mean([r.best_case_fraction for r in rows])
    worst = arithmetic_mean([r.worst_case_fraction for r in rows])
    # ~20% average best-case reduction.
    assert 0.70 <= best <= 0.90
    # every benchmark individually improves in the best case
    for row in rows:
        assert row.best_case_fraction < 1.0
    # all-wrong blocks stay close to the original length
    assert worst <= 1.25
    print()
    print(table3.render(rows))
