"""Regenerate Figure 8: distribution of schedule-length changes.

Paper shape asserted: "a large percentage of the blocks improve the
schedule length by 1-4 cycles"; no block degrades in the all-correct
case.
"""

import pytest

from repro.evaluation import figure8
from repro.evaluation.experiment import arithmetic_mean

from conftest import fresh_evaluation


def run_figure8():
    return figure8.compute(fresh_evaluation())


def test_regenerate_figure8(benchmark):
    rows = benchmark.pedantic(run_figure8, rounds=2, iterations=1)

    assert len(rows) == 8
    for row in rows:
        assert sum(row.percentages.values()) == pytest.approx(100.0)
        assert row.percentages["degraded"] == 0.0
    small_improvements = arithmetic_mean(
        [r.percentages["improved 1-4"] for r in rows]
    )
    any_improvement = arithmetic_mean(
        [
            r.percentages["improved 1-4"]
            + r.percentages["improved 5-8"]
            + r.percentages["improved >8"]
            for r in rows
        ]
    )
    assert small_improvements >= 25.0
    assert any_improvement >= 40.0
    print()
    print(figure8.render(rows))
