"""Regenerate Table 4: best case at issue widths 4 and 8.

Paper shapes asserted: the wider machine performs at least as much
speculation, and the average best-case schedule fraction is at least as
good (the paper: "the improvement in block schedule length is higher for
the wider machine").
"""

from repro.evaluation import table4
from repro.evaluation.experiment import arithmetic_mean

from conftest import fresh_evaluation


def run_table4():
    return table4.compute(fresh_evaluation())


def test_regenerate_table4(benchmark):
    rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)

    assert len(rows) == 8
    total_pred_4w = sum(r.predictions_4w for r in rows)
    total_pred_8w = sum(r.predictions_8w for r in rows)
    assert total_pred_8w >= total_pred_4w
    # A strict subset of benchmarks must show the width win (the paper's
    # figure shows most, not all, improving).
    strictly_better = sum(
        1 for r in rows if r.length_fraction_8w < r.length_fraction_4w
    )
    assert strictly_better >= 3
    mean_4w = arithmetic_mean([r.length_fraction_4w for r in rows])
    mean_8w = arithmetic_mean([r.length_fraction_8w for r in rows])
    assert mean_8w < mean_4w
    print()
    print(table4.render(rows))
