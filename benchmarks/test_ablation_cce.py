"""Ablation: Compensation Code Engine design points.

DESIGN.md calls out two CCE choices worth quantifying on the worked
example and the suite's speculated blocks:

* the one-slot-per-flush cost (Figure 3(c): recovery cannot start until
  correctly speculated ops drain) — measured against the check-compare
  cost knob of the machine description;
* the Compensation Code Buffer capacity — the headline experiments use
  an unbounded buffer; this ablation finds the smallest capacity that
  never overflows across the suite, i.e. the hardware budget the design
  actually needs.
"""

from dataclasses import replace

import pytest

from repro.core.ccb import CCBFull
from repro.core.machine_sim import simulate_block, simulate_worst_case
from repro.core.specsched import schedule_speculative
from repro.core.speculation import transform_block
from repro.evaluation.paper_example import EXAMPLE_LIVE_OUT, build_example_block
from repro.machine.configs import PLAYDOH_4W
from repro.sched.list_scheduler import schedule_block

from conftest import fresh_evaluation


def worst_case_vs_compare_cost():
    """Worst-case length of the paper example as the check's compare
    stage gets more expensive."""
    lengths = {}
    for compare_cost in (0, 1, 2):
        machine = replace(PLAYDOH_4W, check_compare_cost=compare_cost)
        function, load_r4, load_r7 = build_example_block()
        block = function.block("entry")
        original = schedule_block(block, machine).length
        spec = transform_block(
            block, machine, [load_r4, load_r7], live_out=EXAMPLE_LIVE_OUT
        )
        sched = schedule_speculative(spec, machine, original_length=original)
        lengths[compare_cost] = simulate_worst_case(sched).effective_length
    return lengths


def test_check_compare_cost(benchmark):
    lengths = benchmark.pedantic(worst_case_vs_compare_cost, rounds=3, iterations=1)
    # Verification latency feeds straight into recovery latency.
    assert lengths[0] <= lengths[1] <= lengths[2]
    assert lengths[2] > lengths[0]


def _capacity_suffices(sched, capacity: int) -> bool:
    outcomes = {l: False for l in sched.spec.ldpred_ids}
    try:
        simulate_block(sched, outcomes, ccb_capacity=capacity)
    except CCBFull:
        return False
    return True


def minimum_ccb_capacity():
    """Smallest CCB capacity that survives every speculated block of the
    suite under all-incorrect outcomes (the buffer's true high-water
    mark, found by probing the simulator)."""
    evaluation = fresh_evaluation()
    needed = 1
    for name in evaluation.benchmarks:
        comp = evaluation.compilation(name, evaluation.machine_4w)
        for label in comp.speculated_labels:
            sched = comp.block(label).spec_schedule
            capacity = max(1, len(sched.spec.speculated_ops))
            while capacity > 1 and _capacity_suffices(sched, capacity - 1):
                capacity -= 1
            needed = max(needed, capacity)
    return needed


def test_ccb_capacity(benchmark):
    needed = benchmark.pedantic(minimum_ccb_capacity, rounds=1, iterations=1)
    # A small FIFO suffices — the paper's "simple engine" claim.
    assert 1 <= needed <= 16

    # The bound is tight somewhere in the suite: some block overflows a
    # buffer one entry smaller.
    if needed > 1:
        evaluation = fresh_evaluation()
        tight = False
        for name in evaluation.benchmarks:
            comp = evaluation.compilation(name, evaluation.machine_4w)
            for label in comp.speculated_labels:
                sched = comp.block(label).spec_schedule
                if not _capacity_suffices(sched, needed - 1):
                    tight = True
        assert tight
