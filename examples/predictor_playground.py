#!/usr/bin/env python3
"""Predictor playground: how each predictor fares on each stream shape.

Feeds characteristic value streams (constant, strided, noisy-strided,
repeating, random — the shapes the synthetic benchmarks are built from)
through every predictor in the library and tabulates hit rates.  This is
the intuition behind the paper's choice to profile with *both* stride and
FCM and take the better of the two.

Run:  python examples/predictor_playground.py
"""

import random

from repro.ir import format_table
from repro.predict import (
    FCMPredictor,
    LastValuePredictor,
    StridePredictor,
    default_hybrid,
)
from repro.workloads import values

STREAM_LENGTH = 500


def streams():
    rng = random.Random(42)
    return {
        "constant": [7] * STREAM_LENGTH,
        "strided": values.strided(STREAM_LENGTH, start=3, stride=4),
        "noisy stride (20%)": values.noisy_strided(
            STREAM_LENGTH, rng, stride=4, break_rate=0.2
        ),
        "repeating (period 3)": values.repeating(STREAM_LENGTH, [9, 2, 5]),
        "mostly constant (10%)": values.mostly_constant(
            STREAM_LENGTH, rng, value=1, flip_rate=0.1
        ),
        "random": values.random_values(STREAM_LENGTH, rng),
    }


def predictors():
    return {
        "last-value": LastValuePredictor,
        "stride": StridePredictor,
        "fcm": FCMPredictor,
        "hybrid": default_hybrid,
    }


def main() -> None:
    table = []
    names = list(predictors())
    for stream_name, stream in streams().items():
        row = [stream_name]
        for predictor_name in names:
            predictor = predictors()[predictor_name]()
            for v in stream:
                predictor.observe("k", v)
            row.append(f"{predictor.stats.hit_rate:.2f}")
        table.append(row)

    print("Hit rate by predictor and stream shape:\n")
    print(format_table(["stream"] + names, table))
    print(
        "\nStride prediction owns arithmetic sequences, FCM owns repeating "
        "patterns, and the hybrid tracks whichever is winning per key — "
        "matching the paper's best-of(stride, FCM) profiling rule."
    )


if __name__ == "__main__":
    main()
