#!/usr/bin/env python3
"""Issue-width scaling study (the paper's Table 4, extended).

The paper compares a 4-wide and an 8-wide machine and observes that the
wider machine speculates more and improves more.  This example extends
the sweep to 2-, 4-, 8- and 16-wide machines derived from the same base
configuration, reporting per width: predictions selected, the best-case
schedule-length fraction, and the measured dynamic speedup.

Run:  python examples/sweep_issue_width.py [scale]
"""

import sys

from repro.core import compile_program, simulate_program
from repro.ir import format_table
from repro.machine import PLAYDOH_4W
from repro.profiling import profile_program
from repro.workloads import benchmark_names, load_benchmark

def machines():
    half = PLAYDOH_4W  # 4-wide base
    return [
        ("4-wide", half),
        ("8-wide", half.widened(2, name="playdoh-8w")),
        ("16-wide", half.widened(4, name="playdoh-16w")),
    ]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5

    rows = []
    for label, machine in machines():
        predictions = 0
        length_fractions = []
        total_nopred = 0
        total_proposed = 0
        for name in benchmark_names():
            program = load_benchmark(name, scale=scale)
            profile = profile_program(program)
            compilation = compile_program(program, machine, profile)
            predictions += sum(
                len(compilation.block(l).predicted_load_ids)
                for l in compilation.speculated_labels
            )
            length_fractions.append(compilation.weighted_length_fraction(best=True))
            result = simulate_program(compilation)
            total_nopred += result.cycles_nopred
            total_proposed += result.cycles_proposed
        rows.append(
            (
                label,
                predictions,
                f"{sum(length_fractions) / len(length_fractions):.3f}",
                f"{total_nopred / total_proposed:.3f}",
            )
        )

    print("Issue-width scaling (suite averages):\n")
    print(
        format_table(
            ["machine", "static predictions", "best-case length fraction", "suite speedup"],
            rows,
        )
    )
    print(
        "\nThe paper's observation holds: wider machines absorb the "
        "LdPred/check overhead in otherwise-empty slots, so they accept "
        "more predictions and convert them into larger schedule "
        "improvements."
    )


if __name__ == "__main__":
    main()
