#!/usr/bin/env python3
"""Issue-width scaling study (the paper's Table 4, extended).

The paper compares a 4-wide and an 8-wide machine and observes that the
wider machine speculates more and improves more.  This example extends
the sweep to 4-, 8- and 16-wide machines derived from the same base
configuration, reporting per width: predictions selected, the best-case
schedule-length fraction, and the measured dynamic speedup.

The sweep is expressed as a :func:`repro.runner.pipeline_jobs` graph and
handed to the runner, so ``--jobs N`` parallelises the 3 machines x 8
benchmarks cold run and a rerun (say, after adding a width) only
executes the new machine's compile/simulate jobs — profiles are shared
across widths by construction.

Run:  python examples/sweep_issue_width.py [scale] [--jobs N]
"""

import argparse

from repro.ir import format_table
from repro.machine import PLAYDOH_4W
from repro.runner import (
    DiskCache,
    Runner,
    compile_spec,
    pipeline_jobs,
    simulate_spec,
)
from repro.workloads import benchmark_names


def machines():
    half = PLAYDOH_4W  # 4-wide base
    return [
        ("4-wide", half),
        ("8-wide", half.widened(2, name="playdoh-8w")),
        ("16-wide", half.widened(4, name="playdoh-16w")),
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scale", nargs="?", type=float, default=0.5)
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes (0 = one per CPU)")
    parser.add_argument("--cache-dir", default=None)
    args = parser.parse_args()

    names = benchmark_names()
    widths = machines()
    jobs = pipeline_jobs(
        names, [machine for _, machine in widths], scale=args.scale
    )
    with Runner(jobs=args.jobs, cache=DiskCache(root=args.cache_dir)) as runner:
        results = runner.run(jobs)

    rows = []
    for label, machine in widths:
        predictions = 0
        length_fractions = []
        total_nopred = 0
        total_proposed = 0
        for name in names:
            compilation = results[compile_spec(name, machine, args.scale).key()]
            predictions += sum(
                len(compilation.block(l).predicted_load_ids)
                for l in compilation.speculated_labels
            )
            length_fractions.append(compilation.weighted_length_fraction(best=True))
            result = results[simulate_spec(name, machine, args.scale).key()]
            total_nopred += result.cycles_nopred
            total_proposed += result.cycles_proposed
        rows.append(
            (
                label,
                predictions,
                f"{sum(length_fractions) / len(length_fractions):.3f}",
                f"{total_nopred / total_proposed:.3f}",
            )
        )

    print("Issue-width scaling (suite averages):\n")
    print(
        format_table(
            ["machine", "static predictions", "best-case length fraction", "suite speedup"],
            rows,
        )
    )
    print(
        "\nThe paper's observation holds: wider machines absorb the "
        "LdPred/check overhead in otherwise-empty slots, so they accept "
        "more predictions and convert them into larger schedule "
        "improvements."
    )


if __name__ == "__main__":
    main()
