#!/usr/bin/env python3
"""Bring your own workload: build, profile, speculate, inspect.

Shows the library as a downstream user would drive it on code of their
own — a polynomial-evaluation kernel over a coefficient table — rather
than on the bundled SPEC95 stand-ins:

1. author the IR with the fluent builder;
2. lay out memory so the coefficient load is value-predictable;
3. profile, run the speculation pass, and print the block before and
   after (forms, Synchronization bits, wait masks);
4. simulate the best/worst outcome scenarios.

Run:  python examples/custom_workload.py
"""

from repro.core import (
    OpForm,
    schedule_speculative,
    simulate_best_case,
    simulate_worst_case,
    speculate_block,
)
from repro.ir import FunctionBuilder, ProgramBuilder, compute_liveness, format_block
from repro.machine import PLAYDOH_4W
from repro.profiling import profile_program
from repro.sched import schedule_block

COEFFS = 10_000
XS = 20_000
OUT = 30_000
TRIPS = 200


def build_program():
    pb = ProgramBuilder("poly")
    fb = pb.function()
    fb.block("entry")
    fb.mov("r_i", 0)
    fb.br("horner")
    fb.block("horner")
    # The coefficient table cycles every 4 entries: highly predictable.
    fb.and_("r_ci", "r_i", 3)
    fb.add("r_c_addr", "r_ci", COEFFS)
    fb.load("r_c", "r_c_addr")
    # The evaluation point: fresh data each iteration.
    fb.add("r_x_addr", "r_i", XS)
    fb.load("r_x", "r_x_addr")
    # Horner step: acc = acc * x + c — the coefficient heads the chain.
    fb.mul("r_m", "r_c", "r_c")
    fb.add("r_t", "r_m", "r_x")
    fb.mul("r_acc", "r_t", 3)
    fb.add("r_o_addr", "r_i", OUT)
    fb.store("r_acc", "r_o_addr")
    fb.add("r_i", "r_i", 1)
    fb.cmplt("r_cond", "r_i", TRIPS)
    fb.brcond("r_cond", "horner", "exit")
    fb.block("exit")
    fb.halt()
    pb.add(fb.build())
    pb.memory(COEFFS, [5, 3, 8, 2])
    pb.memory(XS, [17 * k % 251 for k in range(TRIPS)])
    return pb.build()


def main() -> None:
    program = build_program()
    machine = PLAYDOH_4W

    profile = profile_program(program)
    print("Load predictability:")
    for op_id, stats in sorted(profile.values.loads.items()):
        print(f"  op{op_id}: stride {stats.stride_rate:.2f}, FCM {stats.fcm_rate:.2f}")

    block = program.main.block("horner")
    print("\nOriginal block:")
    print(format_block(block))
    original = schedule_block(block, machine)
    print(f"\nOriginal schedule ({original.length} cycles):")
    print(original)

    live_out = compute_liveness(program.main).live_out["horner"]
    spec = speculate_block(block, machine, profile.values, live_out=live_out)
    if spec is None:
        raise SystemExit("the pass found nothing profitable to predict")

    print("\nTransformed block (forms and Synchronization bits):")
    for op in spec.operations:
        info = spec.info[op.op_id]
        notes = [info.form.value]
        if info.sync_bit is not None:
            notes.append(f"sets bit {info.sync_bit}")
        if info.wait_bits:
            notes.append(f"waits on bits {sorted(info.wait_bits)}")
        print(f"  {op}   [{', '.join(notes)}]")

    sched = schedule_speculative(spec, machine, original_length=original.length)
    print(f"\nSpeculative schedule ({sched.length} cycles, "
          f"{sched.improvement} saved):")
    print(sched.schedule)

    best = simulate_best_case(sched)
    worst = simulate_worst_case(sched)
    print(f"\nall predictions correct : {best.effective_length} cycles, "
          f"{best.flushed} ops flushed")
    print(f"all predictions wrong   : {worst.effective_length} cycles, "
          f"{worst.executed} ops re-executed in parallel, "
          f"{worst.stall_cycles} stall cycles")


if __name__ == "__main__":
    main()
