#!/usr/bin/env python3
"""Region size vs value prediction (the paper's closing expectation).

Unrolls each benchmark's hottest speculated loop (with register renaming,
validated for architectural equivalence) and measures how the best-case
schedule fraction responds to region size.  The punchline the full run
shows: pointer-chasing loops whose iterations chain serially (li) improve
with region size — the paper's superblock intuition — while loops with
independent iterations see the benefit diluted, because unrolling itself
already harvests their parallelism.

Run:  python examples/regions_study.py [scale]
"""

import sys

from repro.evaluation.experiment import Evaluation, EvaluationSettings
from repro.evaluation.regions_exp import compute, render


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    evaluation = Evaluation(EvaluationSettings(scale=scale))
    rows = compute(evaluation)
    print(render(rows))


if __name__ == "__main__":
    main()
