#!/usr/bin/env python3
"""Quickstart: compile and simulate one benchmark end to end.

Runs the full pipeline the paper describes on the `compress` stand-in:

1. profile the program (block frequencies + load value predictability);
2. compile for the 4-wide Playdoh machine — the speculation pass picks
   predictable loads on each block's critical path and rewrites the
   blocks with LdPred / check-prediction / speculative / non-speculative
   operation forms;
3. simulate the dual-engine machine with a live stride+FCM hybrid value
   predictor, and compare against the no-prediction machine and the
   statically-recovered baseline of the paper's reference [4].

Run:  python examples/quickstart.py [benchmark]
"""

import sys

from repro.compiler import compile_program
from repro.core import OutcomeClass, simulate_program
from repro.machine import PLAYDOH_4W
from repro.profiling import profile_program
from repro.workloads import benchmark_names, load_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "compress"
    if name not in benchmark_names():
        raise SystemExit(f"unknown benchmark {name!r}; pick from {benchmark_names()}")

    print(f"=== {name} on {PLAYDOH_4W} ===\n")

    program = load_benchmark(name)
    profile = profile_program(program)
    print(f"profiled {profile.execution.dynamic_operations} dynamic operations, "
          f"{profile.blocks.total} dynamic blocks")
    for op_id, stats in sorted(profile.values.loads.items()):
        print(f"  load op{op_id}: {stats.executions} executions, "
              f"stride rate {stats.stride_rate:.2f}, FCM rate {stats.fcm_rate:.2f}")

    compilation = compile_program(program, PLAYDOH_4W, profile)
    print(f"\nspeculated blocks: {compilation.speculated_labels}")
    for label in compilation.speculated_labels:
        block = compilation.block(label)
        print(f"  {label}: schedule {block.original_length} -> "
              f"{block.best_case().effective_length} cycles "
              f"({len(block.predicted_load_ids)} predicted load(s))")

    result = simulate_program(compilation)
    print(f"\nno prediction : {result.cycles_nopred} cycles")
    print(f"proposed      : {result.cycles_proposed} cycles "
          f"(speedup {result.speedup_proposed:.3f})")
    print(f"baseline [4]  : {result.cycles_baseline} cycles "
          f"(speedup {result.speedup_baseline:.3f})")
    print(f"\nprediction accuracy: {result.prediction_accuracy:.3f} "
          f"({result.mispredictions}/{result.predictions} mispredicted)")
    print(f"time in all-correct blocks: "
          f"{result.time_fraction(OutcomeClass.ALL_CORRECT):.2f}")
    print(f"time in all-incorrect blocks: "
          f"{result.time_fraction(OutcomeClass.ALL_INCORRECT):.3f}")
    print(f"compensation ops: {result.cc_executed} re-executed, "
          f"{result.cc_flushed} flushed")


if __name__ == "__main__":
    main()
