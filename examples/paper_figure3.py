#!/usr/bin/env python3
"""The paper's worked example (Figures 2, 3 and 7), fully simulated.

Builds the 11-operation dependence graph of Figure 2, predicts the two
loads (r4 and r7), and replays the four outcome scenarios of Figure 3
with a full event trace — the LdPreds setting Synchronization bits, the
checks verifying, the Compensation Code Engine flushing correctly
speculated ops and re-executing mispredicted ones, and the VLIW Engine
stalling exactly where the paper says it should.

Run:  python examples/paper_figure3.py
"""

from repro.evaluation.paper_example import render, run_example


def main() -> None:
    example = run_example()
    print(render(example))

    print("Observations matching the paper:")
    runs = example.scenarios
    print(f"  * speculation shortens the static schedule from "
          f"{example.original_schedule.length} to "
          f"{example.spec_schedule.length} cycles;")
    print(f"  * with every prediction correct no compensation code runs "
          f"({runs['both correct'].flushed} ops simply flush);")
    print(f"  * mispredicting r4 recovers {runs['r4 mispredicted'].executed} "
          f"ops while mispredicting r7 recovers only "
          f"{runs['r7 mispredicted'].executed}, yet both finish in "
          f"{runs['r4 mispredicted'].effective_length} cycles — the larger "
          f"recovery simply starts earlier;")
    print(f"  * mispredicting both loads behaves identically to "
          f"mispredicting r4 alone "
          f"({runs['both mispredicted'].effective_length} cycles), because "
          f"ops 8 and 9 depend on both chains.")


if __name__ == "__main__":
    main()
