#!/usr/bin/env python3
"""Observability walkthrough: metrics, typed traces, Perfetto export.

Simulates the paper's worked example with metrics and tracing enabled,
shows how the snapshot agrees with the simulator's own counters, and
writes a Chrome trace-event file for https://ui.perfetto.dev with the
two engines side by side — the visual version of Figure 3's parallel
recovery.

Run:  python examples/trace_export.py [out.trace.json]
"""

import sys

from repro.evaluation.paper_example import run_example
from repro.obs import (
    CheckEvent,
    ExecuteEvent,
    FlushEvent,
    MetricsRegistry,
    block_run_events,
    chrome_trace,
    write_trace,
)
from repro.core.machine_sim import simulate_block


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "example.trace.json"
    example = run_example()
    spec_schedule = example.spec_schedule
    l4, l7 = spec_schedule.spec.ldpred_ids

    # Re-simulate the r7-mispredict scenario with both a trace sink and
    # a metrics registry attached.  Neither changes the timing result.
    registry = MetricsRegistry()
    run = simulate_block(
        spec_schedule, {l4: True, l7: False}, collect_trace=True, metrics=registry
    )
    snapshot = registry.snapshot()

    print("Typed trace events (r7 mispredicted):")
    for event in run.trace:
        if isinstance(event, (CheckEvent, FlushEvent, ExecuteEvent)):
            print(f"  cycle {event.cycle:>2}  {event}")

    print("\nMetrics snapshot (counters):")
    for key, value in sorted(snapshot.counters.items()):
        print(f"  {key:<32} {value}")
    print("\nMetrics snapshot (histograms):")
    for key, hist in sorted(snapshot.histograms.items()):
        print(f"  {key:<32} n={hist.count} mean={hist.mean:.2f} max={hist.max}")

    flush = snapshot.counter("cce.flush")
    reexec = snapshot.counter("cce.reexec")
    print(
        f"\nConsistency: cce.flush({flush}) + cce.reexec({reexec}) == "
        f"flushed({run.flushed}) + executed({run.executed}) -> "
        f"{flush + reexec == run.flushed + run.executed}"
    )

    events = block_run_events(spec_schedule, run, title="paper example")
    write_trace(out, chrome_trace(events))
    print(f"\nWrote {out} ({len(events)} trace events).")
    print("Open it at https://ui.perfetto.dev — the VLIW Engine's issue")
    print("slots and the Compensation Code Engine's pipeline appear as")
    print("parallel tracks, one microsecond per cycle.")


if __name__ == "__main__":
    main()
