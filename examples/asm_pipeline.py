#!/usr/bin/env python3
"""Drive the whole pipeline from textual assembly.

Writes a small program in the library's assembly syntax, parses it,
optimises it with the classical passes, profiles it, runs the value-
speculation pass, and prints the dual-engine timeline for the worst-case
scenario — the end-to-end path a downstream user would follow for code
that does not come from the bundled workloads.

Run:  python examples/asm_pipeline.py
"""

from repro.compiler import PassManager, standard_pipeline
from repro.core import (
    schedule_speculative,
    simulate_block,
    speculate_block,
    render_timeline,
)
from repro.ir import compute_liveness, format_program_asm, parse_program
from repro.machine import PLAYDOH_4W
from repro.profiling import profile_program
from repro.sched import schedule_block

SOURCE = """
program checksum
; a table of mostly-stable configuration words
memory 1000: 7 7 7 7 7 7 7 9 7 7 7 7 7 7 7 7
memory 2000: 3 1 4 1 5 9 2 6 5 3 5 8 9 7 9 3

function main
entry:
    mov   r_i, #0
    mov   r_sum, #0
    br    loop
loop:
    and   r_k, r_i, #15
    add   r_cfg_addr, r_k, #1000
    load  r_cfg, [r_cfg_addr]      ; highly predictable (mostly 7)
    add   r_d_addr, r_i, #2000
    load  r_data, [r_d_addr]       ; digits of pi: unpredictable-ish
    mul   r_m, r_cfg, r_cfg        ; the cfg value heads a serial chain
    add   r_t, r_m, r_data
    mul   r_u, r_t, #3
    add   r_sum, r_u, r_sum
    add   r_o_addr, r_i, #3000
    store r_sum, [r_o_addr]
    add   r_i, r_i, #1
    cmplt r_c, r_i, #160
    brcond r_c, loop, done
done:
    halt
"""


def main() -> None:
    # The `optimize` frontend pass is fold + copyprop + dce to a fixpoint,
    # with the IR verified after each pass.
    manager = PassManager(standard_pipeline(optimize=True))
    program = manager.run_program_passes(parse_program(SOURCE))
    machine = PLAYDOH_4W

    print("parsed + optimised program:")
    print(format_program_asm(program))

    profile = profile_program(program)
    print("load predictability:")
    for op_id, stats in sorted(profile.values.loads.items()):
        print(f"  op{op_id}: stride={stats.stride_rate:.2f} fcm={stats.fcm_rate:.2f}")

    block = program.main.block("loop")
    original = schedule_block(block, machine)
    live_out = compute_liveness(program.main).live_out["loop"]
    spec = speculate_block(block, machine, profile.values, live_out=live_out)
    if spec is None:
        raise SystemExit("nothing profitable to predict")
    sched = schedule_speculative(spec, machine, original_length=original.length)
    print(f"\nschedule: {original.length} -> {sched.length} cycles "
          f"({spec.num_predictions} prediction(s))\n")

    run = simulate_block(
        sched,
        {l: False for l in spec.ldpred_ids},
        collect_trace=True,
    )
    print("worst-case timeline (every prediction wrong):")
    print(render_timeline(sched, run))


if __name__ == "__main__":
    main()
