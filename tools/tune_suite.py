"""Developer harness: per-benchmark metrics at both widths.

Run:  python tools/tune_suite.py [bench ...]
"""

import sys
import time

from repro.machine import PLAYDOH_4W, PLAYDOH_8W
from repro.profiling import profile_program
from repro.core import compile_program, simulate_program, OutcomeClass
from repro.workloads import BENCHMARKS, load_benchmark

# Paper Table 4 best-case targets: (ex-time fraction, schedule fraction @4w, schedule fraction @8w)
TARGETS = {
    "compress": (0.48, 0.80),
    "ijpeg": (0.35, 0.82),
    "li": (0.49, 0.85),
    "m88ksim": (0.53, 0.73),
    "vortex": (0.49, 0.68),
    "hydro2d": (0.63, 0.80),
    "swim": (0.49, 0.98),
    "tomcatv": (0.51, 0.95),
}


def main(names):
    t0 = time.time()
    print(f"{'bench':9s} | target tf/len | 4w: tf_ac len_b len_w np | 8w: tf_ac len_b len_w np | acc")
    for name in names:
        prog = load_benchmark(name)
        profile = profile_program(prog)
        t_tf, t_len = TARGETS[name]
        row = f"{name:9s} |  {t_tf:.2f} {t_len:.2f}   |"
        acc = 0.0
        for m in (PLAYDOH_4W, PLAYDOH_8W):
            comp = compile_program(prog, m, profile)
            res = simulate_program(comp)
            npred = sum(
                len(comp.block(l).predicted_load_ids) for l in comp.speculated_labels
            )
            row += (
                f"  {res.time_fraction(OutcomeClass.ALL_CORRECT):.2f}"
                f" {comp.weighted_length_fraction(True):.2f}"
                f" {comp.weighted_length_fraction(False):.2f} {npred} |"
            )
            acc = res.prediction_accuracy
        print(row + f" {acc:.2f}")
    print(f"[{time.time()-t0:.1f}s]")


if __name__ == "__main__":
    names = sys.argv[1:] or list(BENCHMARKS)
    main(names)
