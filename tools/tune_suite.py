"""Developer harness: per-benchmark metrics at both widths.

Runs through :mod:`repro.runner`, so repeated invocations while tuning a
single benchmark serve the untouched stages from the disk cache and
``--jobs N`` spreads cold pipelines over worker processes.

Run:  python tools/tune_suite.py [bench ...] [--jobs N] [--scale S]
                                 [--cache-dir DIR | --no-cache]
"""

import argparse
import time

from repro.core import OutcomeClass
from repro.machine import PLAYDOH_4W, PLAYDOH_8W
from repro.runner import DiskCache, Runner, compile_job, simulate_job
from repro.workloads import BENCHMARKS

# Paper Table 4 best-case targets: (ex-time fraction, schedule fraction @4w, schedule fraction @8w)
TARGETS = {
    "compress": (0.48, 0.80),
    "ijpeg": (0.35, 0.82),
    "li": (0.49, 0.85),
    "m88ksim": (0.53, 0.73),
    "vortex": (0.49, 0.68),
    "hydro2d": (0.63, 0.80),
    "swim": (0.49, 0.98),
    "tomcatv": (0.51, 0.95),
}


def main(names, scale=1.0, runner=None):
    owns_runner = runner is None
    if owns_runner:
        runner = Runner(jobs=1)
    t0 = time.time()
    print(f"{'bench':9s} | target tf/len | 4w: tf_ac len_b len_w np | 8w: tf_ac len_b len_w np | acc")
    try:
        for name in names:
            t_tf, t_len = TARGETS[name]
            row = f"{name:9s} |  {t_tf:.2f} {t_len:.2f}   |"
            acc = 0.0
            for m in (PLAYDOH_4W, PLAYDOH_8W):
                comp = runner.run_job(compile_job(name, m, scale=scale))
                res = runner.run_job(simulate_job(name, m, scale=scale))
                npred = sum(
                    len(comp.block(l).predicted_load_ids)
                    for l in comp.speculated_labels
                )
                row += (
                    f"  {res.time_fraction(OutcomeClass.ALL_CORRECT):.2f}"
                    f" {comp.weighted_length_fraction(True):.2f}"
                    f" {comp.weighted_length_fraction(False):.2f} {npred} |"
                )
                acc = res.prediction_accuracy
            print(row + f" {acc:.2f}")
    finally:
        if owns_runner:
            runner.close()
    print(f"[{time.time()-t0:.1f}s]")


def _parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benchmarks", nargs="*", default=list(BENCHMARKS))
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes (0 = one per CPU)")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true")
    return parser.parse_args(argv)


if __name__ == "__main__":
    args = _parse_args()
    cache = DiskCache(root=args.cache_dir, enabled=not args.no_cache)
    with Runner(jobs=args.jobs, cache=cache) as job_runner:
        main(args.benchmarks, scale=args.scale, runner=job_runner)
