"""Unit tests for machine descriptions, resources and configurations."""

import pytest

from repro.ir.opcodes import FUClass, Opcode
from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W, UNLIMITED, by_name
from repro.machine.description import DEFAULT_LATENCIES, MachineDescription
from repro.machine.resources import FUPool, ReservationTable


class TestFUPool:
    def test_counts(self):
        pool = FUPool({FUClass.IALU: 2, FUClass.MEM: 1})
        assert pool.count(FUClass.IALU) == 2
        assert pool.count(FUClass.FALU) == 0
        assert pool.total == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            FUPool({FUClass.IALU: -1})

    def test_scaled(self):
        pool = FUPool({FUClass.IALU: 2, FUClass.MEM: 1}).scaled(2)
        assert pool.count(FUClass.IALU) == 4
        assert pool.count(FUClass.MEM) == 2

    def test_scaled_rejects_zero(self):
        with pytest.raises(ValueError):
            FUPool({FUClass.IALU: 1}).scaled(0)

    def test_str(self):
        assert "ialu" in str(FUPool({FUClass.IALU: 2}))


class TestReservationTable:
    def pool(self):
        return FUPool({FUClass.IALU: 2, FUClass.MEM: 1})

    def test_unit_exhaustion(self):
        table = ReservationTable(self.pool(), issue_width=4)
        assert table.can_issue(0, FUClass.MEM)
        table.issue(0, FUClass.MEM)
        assert not table.can_issue(0, FUClass.MEM)
        assert table.can_issue(1, FUClass.MEM)

    def test_issue_width_limit(self):
        table = ReservationTable(self.pool(), issue_width=2)
        table.issue(0, FUClass.IALU)
        table.issue(0, FUClass.IALU)
        # a MEM unit is free, but the instruction word is full
        assert not table.can_issue(0, FUClass.MEM)
        assert table.slots_used(0) == 2

    def test_issue_on_full_unit_raises(self):
        table = ReservationTable(self.pool(), issue_width=8)
        table.issue(0, FUClass.MEM)
        with pytest.raises(RuntimeError, match="no free"):
            table.issue(0, FUClass.MEM)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ReservationTable(self.pool(), issue_width=0)


class TestMachineDescription:
    def test_default_latency_is_one(self):
        assert PLAYDOH_4W.latency(Opcode.ADD) == 1
        assert PLAYDOH_4W.latency(Opcode.MOV) == 1

    def test_documented_latencies(self):
        assert PLAYDOH_4W.latency(Opcode.LOAD) == 3
        assert PLAYDOH_4W.latency(Opcode.MUL) == 3
        assert PLAYDOH_4W.latency(Opcode.FADD) == 2

    def test_chkpred_latency_derives_from_load(self):
        assert PLAYDOH_4W.latency(Opcode.CHKPRED) == PLAYDOH_4W.latency(Opcode.LOAD)
        slow = PLAYDOH_4W.with_latency(Opcode.LOAD, 5)
        assert slow.latency(Opcode.CHKPRED) == 5

    def test_chkpred_compare_cost(self):
        from dataclasses import replace

        costly = replace(PLAYDOH_4W, check_compare_cost=1)
        assert costly.latency(Opcode.CHKPRED) == 4

    def test_ldpred_is_unit_latency(self):
        assert PLAYDOH_4W.latency(Opcode.LDPRED) == 1

    def test_widened(self):
        wide = PLAYDOH_4W.widened(2)
        assert wide.issue_width == 8
        assert wide.units(FUClass.IALU) == 2 * PLAYDOH_4W.units(FUClass.IALU)
        assert wide.latency(Opcode.LOAD) == PLAYDOH_4W.latency(Opcode.LOAD)

    def test_with_latency_does_not_mutate(self):
        changed = PLAYDOH_4W.with_latency(Opcode.ADD, 2)
        assert changed.latency(Opcode.ADD) == 2
        assert PLAYDOH_4W.latency(Opcode.ADD) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineDescription(
                name="bad", issue_width=0, pool=FUPool({FUClass.IALU: 1})
            )
        with pytest.raises(ValueError):
            MachineDescription(
                name="bad",
                issue_width=1,
                pool=FUPool({FUClass.IALU: 1}),
                latencies={Opcode.ADD: 0},
            )

    def test_str(self):
        assert "playdoh-4w" in str(PLAYDOH_4W)


class TestConfigs:
    def test_8w_doubles_4w(self):
        for fu in FUClass:
            assert PLAYDOH_8W.units(fu) == 2 * PLAYDOH_4W.units(fu)
        assert PLAYDOH_8W.issue_width == 2 * PLAYDOH_4W.issue_width

    def test_unlimited_is_wide(self):
        assert UNLIMITED.issue_width >= 64

    def test_by_name(self):
        assert by_name("playdoh-4w") is PLAYDOH_4W
        assert by_name("playdoh-8w") is PLAYDOH_8W
        with pytest.raises(KeyError):
            by_name("nonexistent")

    def test_default_latencies_table_complete_enough(self):
        assert Opcode.LOAD in DEFAULT_LATENCIES
        assert Opcode.LDPRED in DEFAULT_LATENCIES
