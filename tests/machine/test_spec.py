"""Declarative machine specs: round-trips, fingerprints, registry."""

from __future__ import annotations

import json
import pickle
import sys

import pytest

from repro.ir.opcodes import FUClass, Opcode
from repro.machine.configs import (
    PLAYDOH_4W,
    PLAYDOH_4W_SPEC,
    PLAYDOH_8W,
    PLAYDOH_8W_SPEC,
    UNLIMITED,
    UNLIMITED_SPEC,
    by_name,
    register_machine,
    registry_names,
    spec_by_name,
)
from repro.machine.description import MachineDescription
from repro.machine.predictor import PredictorSpec
from repro.machine.resources import FUPool
from repro.machine.spec import (
    MACHINE_SCHEMA_VERSION,
    MachineSpec,
    load_spec,
    machine_fingerprint,
)

#: Golden content hashes of the paper's machines.  These are embedded in
#: runner cache keys and service wire payloads — if one changes, every
#: cached result is (correctly) invalidated, so a change here must be
#: deliberate, reviewed, and ride a CODE_VERSION discussion.
GOLDEN_FINGERPRINTS = {
    "playdoh-4w": "92347e582e2766e2dcdc0a9b51ebd7644e4589c8d94bed1b3ba1c558b1ad7efb",
    "playdoh-8w": "9bc5d47b7c7474b6324490b733ae33332167bcc1c5f44f89e13fb74d4f85f13b",
    "unlimited": "994ed0376863eafc18b23c95743faf9288004ceb5f3b3204128862241eaf2440",
}


class TestFingerprint:
    def test_golden_fingerprints(self):
        for name, expected in GOLDEN_FINGERPRINTS.items():
            assert spec_by_name(name).fingerprint() == expected, name

    def test_fingerprint_is_stable_across_calls(self):
        assert PLAYDOH_4W_SPEC.fingerprint() == PLAYDOH_4W_SPEC.fingerprint()

    def test_name_is_part_of_fingerprint(self):
        renamed = PLAYDOH_4W_SPEC.override(name="other")
        assert renamed.fingerprint() != PLAYDOH_4W_SPEC.fingerprint()

    def test_every_field_moves_the_fingerprint(self):
        base = PLAYDOH_4W_SPEC
        variants = [
            base.override(issue_width=5),
            base.with_units(mem=2),
            base.with_latency(Opcode.LOAD, 7),
            base.override(branch_penalty=3),
            base.override(check_compare_cost=1),
            base.override(ccb_capacity=8),
            base.override(ovb_capacity=8),
            base.override(sync_width=32),
            base.override(predictor=PredictorSpec(kind="stride")),
            base.override(speculation={"threshold": 0.8}),
        ]
        prints = {v.fingerprint() for v in variants}
        assert len(prints) == len(variants)
        assert base.fingerprint() not in prints

    def test_machine_fingerprint_spec_and_description_agree(self):
        assert machine_fingerprint(PLAYDOH_4W_SPEC) == machine_fingerprint(
            PLAYDOH_4W
        )

    def test_description_fingerprint_method(self):
        assert PLAYDOH_4W.fingerprint() == PLAYDOH_4W_SPEC.fingerprint()


class TestRoundTrips:
    def rich_spec(self) -> MachineSpec:
        return MachineSpec(
            name="rich",
            issue_width=6,
            units={FUClass.IALU: 3, FUClass.MEM: 2, FUClass.BRANCH: 1},
            branch_penalty=3,
            check_compare_cost=1,
            ccb_capacity=16,
            ovb_capacity=8,
            sync_width=32,
            predictor=PredictorSpec(kind="fcm", table_entries=1024, fcm_order=3),
            speculation={"threshold": 0.75, "max_predictions": 2},
        ).with_latency(Opcode.LOAD, 5)

    def test_json_round_trip(self):
        for spec in (PLAYDOH_4W_SPEC, UNLIMITED_SPEC, self.rich_spec()):
            restored = MachineSpec.from_json(spec.to_json())
            assert restored == spec
            assert restored.fingerprint() == spec.fingerprint()

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "rich.json"
        path.write_text(self.rich_spec().to_json(), encoding="utf-8")
        assert load_spec(path) == self.rich_spec()

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="TOML specs need tomllib (3.11+)"
    )
    def test_toml_file_round_trip(self, tmp_path):
        spec = self.rich_spec()
        lines = [
            f'name = "{spec.name}"',
            f"issue_width = {spec.issue_width}",
            f"branch_penalty = {spec.branch_penalty}",
            f"check_compare_cost = {spec.check_compare_cost}",
            f"ccb_capacity = {spec.ccb_capacity}",
            f"ovb_capacity = {spec.ovb_capacity}",
            f"sync_width = {spec.sync_width}",
            "[units]",
        ]
        lines += [f"{fu.value} = {n}" for fu, n in spec.units.items()]
        lines.append("[latencies]")
        lines += [f'"{op.value}" = {n}' for op, n in spec.latencies.items()]
        lines.append("[predictor]")
        lines += [
            f'kind = "{spec.predictor.kind}"',
            f"table_entries = {spec.predictor.table_entries}",
            f"fcm_order = {spec.predictor.fcm_order}",
            f"table_bits = {spec.predictor.table_bits}",
            f"counter_max = {spec.predictor.counter_max}",
            "[speculation]",
            "threshold = 0.75",
            "max_predictions = 2",
        ]
        path = tmp_path / "rich.toml"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert load_spec(path) == spec

    def test_description_round_trip_lossless(self):
        for constant in (PLAYDOH_4W, PLAYDOH_8W, UNLIMITED):
            spec = MachineSpec.from_description(constant)
            rebuilt = spec.build()
            assert rebuilt == constant
            # Byte-identity matters: service workers rebuild machines from
            # wire specs and results must pickle identically to local runs.
            assert pickle.dumps(rebuilt) == pickle.dumps(constant)

    def test_build_equals_registry_constant(self):
        assert PLAYDOH_4W_SPEC.build() == PLAYDOH_4W
        assert PLAYDOH_8W_SPEC.build() == PLAYDOH_8W
        assert UNLIMITED_SPEC.build() == UNLIMITED


class TestValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            MachineSpec(name="", issue_width=4, units={FUClass.IALU: 1})

    def test_rejects_zero_issue_width(self):
        with pytest.raises(ValueError, match="issue width"):
            MachineSpec(name="x", issue_width=0, units={FUClass.IALU: 1})

    def test_rejects_no_units(self):
        with pytest.raises(ValueError, match="functional unit"):
            MachineSpec(name="x", issue_width=4, units={FUClass.IALU: 0})

    def test_rejects_bad_latency(self):
        with pytest.raises(ValueError, match="latency"):
            MachineSpec(
                name="x",
                issue_width=4,
                units={FUClass.IALU: 1},
                latencies={Opcode.LOAD: 0},
            )

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="ccb_capacity"):
            MachineSpec(
                name="x", issue_width=4, units={FUClass.IALU: 1}, ccb_capacity=0
            )

    def test_rejects_unknown_speculation_field(self):
        with pytest.raises(ValueError, match="speculation"):
            MachineSpec(
                name="x",
                issue_width=4,
                units={FUClass.IALU: 1},
                speculation={"not_a_knob": 1},
            )

    def test_from_canonical_rejects_unknown_field(self):
        payload = PLAYDOH_4W_SPEC.canonical()
        payload["frobnicate"] = 1
        with pytest.raises(ValueError, match="frobnicate"):
            MachineSpec.from_canonical(payload)

    def test_from_canonical_rejects_newer_schema(self):
        payload = PLAYDOH_4W_SPEC.canonical()
        payload["schema"] = MACHINE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            MachineSpec.from_canonical(payload)

    def test_predictor_kind_validated(self):
        with pytest.raises(ValueError, match="predictor"):
            PredictorSpec(kind="oracle")


class TestDerivations:
    def test_widened_doubles_everything(self):
        wide = PLAYDOH_4W_SPEC.widened(2, name="w")
        assert wide.issue_width == 8
        assert wide.units[FUClass.IALU] == 4
        assert wide.latencies == PLAYDOH_4W_SPEC.latencies

    def test_playdoh_8w_is_widened_4w(self):
        assert PLAYDOH_8W_SPEC == PLAYDOH_4W_SPEC.widened(2, name="playdoh-8w")

    def test_override_merges_speculation(self):
        spec = PLAYDOH_4W_SPEC.override(speculation={"threshold": 0.5})
        spec = spec.override(speculation={"max_predictions": 3})
        assert spec.speculation == {"threshold": 0.5, "max_predictions": 3}

    def test_spec_config_caps_sync_width(self):
        spec = PLAYDOH_4W_SPEC.override(sync_width=16)
        assert spec.spec_config().sync_width == 16

    def test_spec_config_defaults_match_pass_defaults(self):
        from repro.core.speculation import SpeculationConfig

        assert PLAYDOH_4W_SPEC.spec_config() == SpeculationConfig()


class TestRegistry:
    def test_registry_names(self):
        assert list(registry_names()) == ["playdoh-4w", "playdoh-8w", "unlimited"]

    def test_by_name_returns_shared_constants(self):
        # Identity, not just equality: evaluation caches key on machine
        # objects and the whole codebase shares the module constants.
        assert by_name("playdoh-4w") is PLAYDOH_4W
        assert by_name("playdoh-8w") is PLAYDOH_8W
        assert by_name("unlimited") is UNLIMITED

    def test_unknown_name_lists_both_resolutions(self):
        with pytest.raises(KeyError, match=r"playdoh-4w.*\.json/\.toml"):
            by_name("nosuch")

    def test_by_name_resolves_spec_files(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(
            PLAYDOH_4W_SPEC.override(name="custom").to_json(), encoding="utf-8"
        )
        machine = by_name(str(path))
        assert isinstance(machine, MachineDescription)
        assert machine.name == "custom"
        assert spec_by_name(str(path)).fingerprint() == machine.fingerprint()

    def test_registry_and_spec_file_equivalence(self, tmp_path):
        """A registry machine written to disk and loaded back is the
        same machine: same fingerprint, equal build."""
        for name in registry_names():
            path = tmp_path / f"{name}.json"
            path.write_text(spec_by_name(name).to_json(), encoding="utf-8")
            loaded = load_spec(path)
            assert loaded.fingerprint() == GOLDEN_FINGERPRINTS[name]
            assert loaded.build() == by_name(name)

    def test_register_machine(self):
        spec = PLAYDOH_4W_SPEC.override(name="test-register-4w")
        try:
            register_machine(spec)
            assert "test-register-4w" in registry_names()
            assert spec_by_name("test-register-4w") == spec
            # Same fingerprint re-registration is a no-op...
            register_machine(spec)
            # ...a different machine under the same name is an error.
            with pytest.raises(ValueError, match="already registered"):
                register_machine(spec.override(issue_width=5))
        finally:
            from repro.machine import configs

            configs._REGISTRY.pop("test-register-4w", None)


class TestFUPoolNormalisation:
    def test_counts_sorted_by_class_value(self):
        a = FUPool({FUClass.MEM: 1, FUClass.IALU: 2})
        b = FUPool({FUClass.IALU: 2, FUClass.MEM: 1})
        assert pickle.dumps(a) == pickle.dumps(b)

    def test_latencies_sorted_on_description(self):
        lat = dict(reversed(list(PLAYDOH_4W.latencies.items())))
        m = MachineDescription(
            name=PLAYDOH_4W.name,
            issue_width=PLAYDOH_4W.issue_width,
            pool=PLAYDOH_4W.pool,
            latencies=lat,
        )
        assert pickle.dumps(m) == pickle.dumps(PLAYDOH_4W)


class TestCanonicalForm:
    def test_canonical_is_json_safe_and_sorted(self):
        payload = PLAYDOH_4W_SPEC.canonical()
        text = json.dumps(payload)  # must not raise
        assert json.loads(text) == payload
        assert payload["schema"] == MACHINE_SCHEMA_VERSION
        assert list(payload["units"]) == sorted(payload["units"])
        assert list(payload["latencies"]) == sorted(payload["latencies"])

    def test_speculation_floats_travel_as_repr(self):
        spec = PLAYDOH_4W_SPEC.override(speculation={"threshold": 0.1 + 0.2})
        payload = spec.canonical()
        assert payload["speculation"]["threshold"] == repr(0.1 + 0.2)
        assert MachineSpec.from_canonical(payload) == spec
