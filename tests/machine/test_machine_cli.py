"""The ``python -m repro.machine`` introspection CLI."""

from __future__ import annotations

import json

import pytest

from repro.machine.__main__ import main
from repro.machine.configs import PLAYDOH_4W_SPEC, registry_names, spec_by_name


class TestList:
    def test_lists_every_registered_machine(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in registry_names():
            assert name in out

    def test_default_command_is_list(self, capsys):
        assert main([]) == 0
        assert "playdoh-4w" in capsys.readouterr().out

    def test_json_mode_emits_canonical_specs(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["playdoh-4w"] == PLAYDOH_4W_SPEC.canonical()


class TestShow:
    def test_show_registry_name(self, capsys):
        assert main(["show", "playdoh-4w"]) == 0
        out = capsys.readouterr().out
        assert "playdoh-4w" in out and "4-wide" in out

    def test_show_json_carries_fingerprint(self, capsys):
        assert main(["show", "playdoh-8w", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fingerprint"] == spec_by_name("playdoh-8w").fingerprint()
        assert payload["machine"] == spec_by_name("playdoh-8w").canonical()

    def test_show_spec_file(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(
            PLAYDOH_4W_SPEC.override(name="filed").to_json(), encoding="utf-8"
        )
        assert main(["show", str(path)]) == 0
        assert "filed" in capsys.readouterr().out

    def test_unknown_machine_is_a_clean_error(self, capsys):
        assert main(["show", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown machine" in err and "playdoh-4w" in err


class TestDigest:
    def test_digest_defaults_to_whole_registry(self, capsys):
        assert main(["digest"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == len(registry_names())
        for line in lines:
            name, fingerprint = line.split()
            assert fingerprint == spec_by_name(name).fingerprint()

    def test_digest_named(self, capsys):
        assert main(["digest", "playdoh-4w"]) == 0
        out = capsys.readouterr().out
        assert out.split() == [
            "playdoh-4w",
            spec_by_name("playdoh-4w").fingerprint(),
        ]


class TestDiff:
    def test_identical_machines_exit_zero(self, capsys):
        assert main(["diff", "playdoh-4w", "playdoh-4w"]) == 0
        assert "identical" in capsys.readouterr().out

    def test_differing_machines_exit_one_and_name_fields(self, capsys):
        assert main(["diff", "playdoh-4w", "playdoh-8w"]) == 1
        out = capsys.readouterr().out
        assert "issue_width" in out
        assert "4 -> 8" in out
        # Latencies agree between the two, so they are not in the diff.
        assert "latencies" not in out

    def test_diff_against_spec_file(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(
            PLAYDOH_4W_SPEC.override(ccb_capacity=8).to_json(), encoding="utf-8"
        )
        assert main(["diff", "playdoh-4w", str(path)]) == 1
        assert "ccb_capacity" in capsys.readouterr().out
