"""Differential suite: batched engine vs scalar engine, byte for byte.

The batched struct-of-arrays engine promises *byte identity* with the
scalar simulation across the whole machine space — wide and narrow
issue, bounded CCBs, every speculation threshold.  These tests are the
contract: the golden suite runs both engines on a machine x threshold
grid, and hypothesis drives random synthetic programs through the same
comparison.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batchsim.context import BatchContext
from repro.core.metrics import compile_program
from repro.core.program_sim import simulate_program
from repro.core.speculation import SpeculationConfig
from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W, PLAYDOH_4W_SPEC
from repro.profiling.profile_run import profile_program
from repro.trace import capture_trace
from repro.workloads.suite import load_suite
from repro.workloads.synthetic import random_program

#: The ISSUE's machine grid: the paper's 4-wide, the Table 4 8-wide,
#: and a tight-CCB variant so compensation back-pressure (the one
#: machine feature that couples block instances) is on the grid too.
TIGHT_CCB = PLAYDOH_4W_SPEC.override(
    name="playdoh-4w-tightccb", ccb_capacity=8, ovb_capacity=64
).build()

MACHINES = (PLAYDOH_4W, PLAYDOH_8W, TIGHT_CCB)
THRESHOLDS = (0.5, 0.8)

SUITE = load_suite(scale=0.25)
TRACES = {name: capture_trace(program) for name, program in SUITE.items()}
PROFILES = {name: profile_program(program) for name, program in SUITE.items()}


def assert_results_identical(scalar, batched):
    assert dataclasses.asdict(scalar) == dataclasses.asdict(batched)


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
@pytest.mark.parametrize("threshold", THRESHOLDS)
@pytest.mark.parametrize("workload", sorted(SUITE))
class TestGoldenSuiteParity:
    def test_batched_equals_scalar(self, workload, machine, threshold):
        compilation = compile_program(
            SUITE[workload],
            machine,
            PROFILES[workload],
            config=SpeculationConfig(threshold=threshold),
        )
        trace = TRACES[workload]
        scalar = simulate_program(compilation, trace=trace)
        batched = simulate_program(compilation, trace=trace, batch=True)
        assert_results_identical(scalar, batched)


class TestMetricsAndContexts:
    def test_metrics_snapshots_match(self):
        """collect_metrics parity: counters, not just cycle totals."""
        compilation = compile_program(
            SUITE["compress"], PLAYDOH_4W, PROFILES["compress"]
        )
        trace = TRACES["compress"]
        scalar = simulate_program(compilation, trace=trace, collect_metrics=True)
        batched = simulate_program(
            compilation, trace=trace, collect_metrics=True, batch=True
        )
        assert_results_identical(scalar, batched)

    def test_cycle_stacks_match(self):
        compilation = compile_program(
            SUITE["swim"], PLAYDOH_8W, PROFILES["swim"]
        )
        trace = TRACES["swim"]
        scalar = simulate_program(compilation, trace=trace, collect_cycles=True)
        batched = simulate_program(
            compilation, trace=trace, collect_cycles=True, batch=True
        )
        assert_results_identical(scalar, batched)

    def test_explicit_context_equals_default(self):
        """A caller-owned BatchContext gives the same answer as the
        process-wide one, and reusing it across points is harmless."""
        compilation = compile_program(
            SUITE["compress"], PLAYDOH_4W, PROFILES["compress"]
        )
        trace = TRACES["compress"]
        context = BatchContext()
        first = simulate_program(compilation, trace=trace, batch=context)
        second = simulate_program(compilation, trace=trace, batch=context)
        via_default = simulate_program(compilation, trace=trace, batch=True)
        assert_results_identical(first, second)
        assert_results_identical(first, via_default)
        from repro.batchsim._compat import batch_enabled

        if batch_enabled():  # on the scalar CI leg the context is idle
            stats = context.stats()
            assert stats["arrays.hits"] > 0  # second run shared the decode

    def test_off_path_points_fall_back_identically(self):
        """Confidence gating leaves the batched fast path; the fallback
        must still agree with the scalar engine called directly."""
        from repro.predict.confidence import ConfidenceEstimator

        compilation = compile_program(
            SUITE["compress"], PLAYDOH_4W, PROFILES["compress"]
        )
        trace = TRACES["compress"]
        scalar = simulate_program(
            compilation, trace=trace, confidence=ConfidenceEstimator()
        )
        batched = simulate_program(
            compilation,
            trace=trace,
            confidence=ConfidenceEstimator(),
            batch=True,
        )
        assert_results_identical(scalar, batched)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    machine_idx=st.integers(min_value=0, max_value=len(MACHINES) - 1),
    threshold=st.sampled_from((0.5, 0.65, 0.8)),
)
def test_random_programs_batched_equals_scalar(seed, machine_idx, threshold):
    program = random_program(seed)
    machine = MACHINES[machine_idx]
    profile = profile_program(program)
    compilation = compile_program(
        program, machine, profile, config=SpeculationConfig(threshold=threshold)
    )
    trace = capture_trace(program)
    scalar = simulate_program(compilation, trace=trace)
    batched = simulate_program(compilation, trace=trace, batch=True)
    assert_results_identical(scalar, batched)
