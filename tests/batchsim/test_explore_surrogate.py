"""Surrogate-pruned explore sweeps: nothing is ever silently dropped.

``explore`` layers three behaviours over the plain per-point loop —
dedup, error capture, surrogate pruning — and all three must account
for every input point either as a result or as a ``PrunedPoint`` with a
reason.  Survivor results must be byte-identical to what a full sweep
would have produced for the same points, and the cross-validation of
the survivors' estimates must sit inside the documented bound.
"""

from __future__ import annotations

import json

import pytest

from repro.batchsim.surrogate import DOCUMENTED_ERROR_BOUND
from repro.explore.driver import explore, explore_points
from repro.explore.report import (
    REPORT_SCHEMA_VERSION,
    dump_report,
    load_report,
    report_payload,
)
from repro.explore.space import Axis, DesignSpace
from repro.machine.configs import PLAYDOH_4W_SPEC

SCALE = 0.05
BENCHMARKS = ["compress"]


@pytest.fixture(scope="module")
def space():
    axes = (Axis.parse("issue_width=2,4"), Axis.parse("threshold=0.5,0.8"))
    return DesignSpace(base=PLAYDOH_4W_SPEC, axes=axes)


@pytest.fixture(scope="module")
def surrogate_outcome(space):
    return explore(
        space.grid(),
        scale=SCALE,
        benchmarks=BENCHMARKS,
        surrogate=True,
    )


class TestAccounting:
    def test_every_point_is_result_or_pruned(self, space, surrogate_outcome):
        points = space.grid()
        labels = {p.label for p in points}
        seen = {r.label for r in surrogate_outcome.results} | {
            p.label for p in surrogate_outcome.pruned
        }
        assert seen == labels
        assert len(surrogate_outcome.results) + len(
            surrogate_outcome.pruned
        ) == len(points)

    def test_pruned_points_carry_reason_and_estimate(self, surrogate_outcome):
        for pruned in surrogate_outcome.pruned:
            assert pruned.reason == "surrogate"
            assert pruned.detail
            assert pruned.estimated_speedup is not None

    def test_keep_rule_retains_at_least_top_quarter(
        self, space, surrogate_outcome
    ):
        # frontier + top ceil(n/4) by estimate: never an empty survivor set.
        assert len(surrogate_outcome.results) >= 1

    def test_duplicates_prune_with_reason(self, space):
        points = space.grid()
        outcome = explore(
            list(points) + list(points), scale=SCALE, benchmarks=BENCHMARKS
        )
        dupes = [p for p in outcome.pruned if p.reason == "duplicate"]
        assert len(dupes) == len(points)
        assert len(outcome.results) == len(points)
        for pruned in dupes:
            assert "identical machine and speculation config" in pruned.detail

    def test_evaluation_errors_prune_not_raise(self, space):
        """A point whose simulation raises (fatally small CCB) becomes a
        pruned row with the exception, not an aborted sweep."""
        doomed = DesignSpace(
            base=PLAYDOH_4W_SPEC,
            axes=(Axis.parse("ccb_capacity=1"), Axis.parse("threshold=0.5")),
        )
        points = list(doomed.grid()) + list(space.grid())
        outcome = explore(points, scale=SCALE, benchmarks=BENCHMARKS)
        errors = [p for p in outcome.pruned if p.reason == "error"]
        assert len(errors) == 1
        assert "CCB" in errors[0].detail
        # The healthy points still simulated.
        assert len(outcome.results) == len(space.grid())


class TestSurvivorParity:
    def test_survivors_match_unpruned_sweep(self, space, surrogate_outcome):
        """Pruning changes *which* points are simulated, never what a
        simulated point reports."""
        full = {
            r.label: r
            for r in explore_points(
                space.grid(), scale=SCALE, benchmarks=BENCHMARKS
            )
        }
        for result in surrogate_outcome.results:
            assert json.dumps(result.to_json(), sort_keys=True) == json.dumps(
                full[result.label].to_json(), sort_keys=True
            )


class TestValidation:
    def test_cross_validation_present_and_bounded(self, surrogate_outcome):
        validation = surrogate_outcome.surrogate
        assert validation is not None
        assert validation.bound == DOCUMENTED_ERROR_BOUND
        assert validation.entries  # every survivor benchmark validated
        assert validation.within_bound
        assert validation.max_rel_error <= DOCUMENTED_ERROR_BOUND

    def test_validation_covers_every_survivor_benchmark(
        self, surrogate_outcome
    ):
        validated = {(label, bench) for label, bench, *_ in
                     surrogate_outcome.surrogate.entries}
        expected = {
            (r.label, b.benchmark)
            for r in surrogate_outcome.results
            for b in r.benchmarks
        }
        assert validated == expected

    def test_no_surrogate_means_no_validation(self, space):
        outcome = explore(space.grid(), scale=SCALE, benchmarks=BENCHMARKS)
        assert outcome.surrogate is None
        assert not [p for p in outcome.pruned if p.reason == "surrogate"]


class TestReportRoundTrip:
    def test_v3_payload_round_trips(self, space, surrogate_outcome):
        payload = report_payload(
            space,
            surrogate_outcome.results,
            SCALE,
            BENCHMARKS,
            pruned=surrogate_outcome.pruned,
            surrogate=surrogate_outcome.surrogate,
        )
        loaded = load_report(dump_report(payload))
        assert loaded["schema"] == REPORT_SCHEMA_VERSION
        assert {p["reason"] for p in loaded["pruned"]} <= {
            "duplicate", "error", "surrogate"
        }
        assert loaded["surrogate"]["within_bound"] is True
        assert loaded["surrogate"]["bound"] == DOCUMENTED_ERROR_BOUND
        assert len(loaded["points"]) == len(surrogate_outcome.results)

    def test_v2_artifacts_still_load(self, space, surrogate_outcome):
        payload = report_payload(
            space, surrogate_outcome.results, SCALE, BENCHMARKS
        )
        payload["schema"] = 2
        del payload["pruned"]
        del payload["surrogate"]
        loaded = load_report(dump_report(payload))
        assert loaded["pruned"] == []
        assert loaded["surrogate"] is None

    def test_dump_is_deterministic(self, space, surrogate_outcome):
        kwargs = dict(
            pruned=surrogate_outcome.pruned,
            surrogate=surrogate_outcome.surrogate,
        )
        a = dump_report(
            report_payload(
                space, surrogate_outcome.results, SCALE, BENCHMARKS, **kwargs
            )
        )
        b = dump_report(
            report_payload(
                space, surrogate_outcome.results, SCALE, BENCHMARKS, **kwargs
            )
        )
        assert a == b
