"""Surrogate accuracy: the documented error bound holds on the golden
suite, and the exact parts of the estimate are exact.

``DOCUMENTED_ERROR_BOUND`` is a contract: ``repro-explore --surrogate``
prunes points on the strength of these estimates, and the CI batch-parity
job asserts the explore artifact's cross-validation stayed within the
bound.  This module re-derives the bound from first principles every run:
all benchmarks x {playdoh-4w, playdoh-8w} x thresholds {0.5, 0.65, 0.8}.
"""

from __future__ import annotations

import pytest

from repro.batchsim.surrogate import (
    DOCUMENTED_ERROR_BOUND,
    estimate_compilation,
    relative_error,
)
from repro.core.metrics import compile_program
from repro.core.program_sim import simulate_program
from repro.core.speculation import SpeculationConfig
from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W
from repro.profiling.profile_run import profile_program
from repro.trace import capture_trace
from repro.workloads.suite import load_suite

MACHINES = (PLAYDOH_4W, PLAYDOH_8W)
THRESHOLDS = (0.5, 0.65, 0.8)

SUITE = load_suite(scale=0.25)
TRACES = {name: capture_trace(program) for name, program in SUITE.items()}
PROFILES = {name: profile_program(program) for name, program in SUITE.items()}

GRID = [
    (workload, machine, threshold)
    for workload in sorted(SUITE)
    for machine in MACHINES
    for threshold in THRESHOLDS
]


def _ids(case):
    workload, machine, threshold = case
    return f"{workload}-{machine.name}-t{threshold}"


@pytest.mark.parametrize("case", GRID, ids=_ids)
def test_error_bound_holds_on_golden_suite(case):
    workload, machine, threshold = case
    compilation = compile_program(
        SUITE[workload],
        machine,
        PROFILES[workload],
        config=SpeculationConfig(threshold=threshold),
    )
    estimate = estimate_compilation(compilation)
    exact = simulate_program(
        compilation, trace=TRACES[workload], batch=True
    )
    # cycles_nopred is exact by construction (count x original length
    # over the same profiled block counts the simulator replays).
    assert estimate.cycles_nopred == exact.cycles_nopred
    err = relative_error(estimate, exact)
    assert err <= DOCUMENTED_ERROR_BOUND, (
        f"{workload} on {machine.name} @ threshold={threshold}: surrogate "
        f"error {err:.4f} exceeds documented bound {DOCUMENTED_ERROR_BOUND}"
    )


def test_estimate_is_pure_and_cheap():
    """The estimate never touches the simulator: same compilation, same
    answer, and the expected length sits between the boundary runs."""
    compilation = compile_program(
        SUITE["compress"], PLAYDOH_4W, PROFILES["compress"]
    )
    a = estimate_compilation(compilation)
    b = estimate_compilation(compilation)
    assert a == b
    for block in a.blocks:
        assert block.best_length <= block.expected_length <= block.worst_length
        assert 0.0 <= block.p_all_correct <= 1.0
    assert a.cycles_proposed <= a.cycles_nopred * 1.05  # speculation helps
    assert a.speedup >= 0.95
