"""Escape hatches and degradation: REPRO_NO_BATCH, NumPy gating, and
the batch_simulate runner stage's parity with scalar simulate jobs.

The batched engine must never be load-bearing for correctness: with the
environment hatch set, with NumPy reported broken, or on off-path
points, every public entry point silently produces the scalar engine's
byte-identical answer.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.batchsim import _compat
from repro.batchsim.context import reset_shared_state
from repro.batchsim.engine import unsupported_reason
from repro.core.metrics import compile_program
from repro.core.program_sim import simulate_program
from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W
from repro.profiling.profile_run import profile_program
from repro.trace import capture_trace
from repro.workloads.suite import load_suite

SUITE = load_suite(scale=0.25)


@pytest.fixture
def compiled():
    program = SUITE["compress"]
    profile = profile_program(program)
    compilation = compile_program(program, PLAYDOH_4W, profile)
    return compilation, capture_trace(program)


@pytest.fixture
def no_batch(monkeypatch):
    """Force the scalar path the way a CI leg does."""
    monkeypatch.setenv(_compat.NO_BATCH_ENV, "1")
    _compat.refresh()
    yield
    # The autouse reset fixture re-reads the environment after
    # monkeypatch restores it; refresh here keeps ordering irrelevant.
    _compat.refresh()


class TestEscapeHatch:
    def test_env_disables_batching_and_sharing(self, no_batch):
        assert _compat.scalar_forced()
        assert not _compat.batch_enabled()
        assert not _compat.sharing_enabled()
        assert "REPRO_NO_BATCH" in unsupported_reason(trace=object())

    def test_refresh_rereads_environment(self, monkeypatch):
        monkeypatch.setenv(_compat.NO_BATCH_ENV, "1")
        _compat.refresh()
        assert _compat.scalar_forced()
        monkeypatch.delenv(_compat.NO_BATCH_ENV)
        # Cached until refreshed — sharing_enabled sits on hot paths.
        assert _compat.scalar_forced()
        _compat.refresh()
        assert not _compat.scalar_forced()

    def test_reset_shared_state_refreshes(self, monkeypatch):
        monkeypatch.setenv(_compat.NO_BATCH_ENV, "1")
        reset_shared_state()
        assert _compat.scalar_forced()
        monkeypatch.delenv(_compat.NO_BATCH_ENV)
        reset_shared_state()
        assert not _compat.scalar_forced()

    def test_batch_true_falls_back_identically(self, compiled, no_batch):
        compilation, trace = compiled
        scalar = simulate_program(compilation, trace=trace)
        forced = simulate_program(compilation, trace=trace, batch=True)
        assert dataclasses.asdict(scalar) == dataclasses.asdict(forced)


class TestNumpyGate:
    def test_version_parses(self):
        assert _compat._parse_version("1.24.3") == (1, 24, 3)
        assert _compat._parse_version("2.0.0rc1") == (2, 0, 0)
        assert _compat._parse_version("nonsense") == ()

    def test_missing_numpy_reports_remediation(self, compiled, monkeypatch):
        compilation, trace = compiled
        message = (
            "repro.batchsim needs NumPy but importing it failed: "
            "No module named 'numpy'.  Install numpy>=1.24, or set "
            "REPRO_NO_BATCH=1 to force the scalar simulation path."
        )
        monkeypatch.setattr(_compat, "_numpy", None)
        monkeypatch.setattr(_compat, "_numpy_error", message)
        monkeypatch.setattr(_compat, "_checked", True)
        assert not _compat.have_numpy()
        assert not _compat.batch_enabled()
        assert _compat.numpy_error() == message
        assert unsupported_reason(trace=trace) == message
        with pytest.raises(ImportError, match="REPRO_NO_BATCH=1"):
            _compat.require_numpy()
        # simulate_program degrades to the scalar engine, not an error.
        result = simulate_program(compilation, trace=trace, batch=True)
        scalar = simulate_program(compilation, trace=trace)
        assert dataclasses.asdict(result) == dataclasses.asdict(scalar)


@pytest.fixture
def batching_on(monkeypatch):
    """Neutralise a CI leg's REPRO_NO_BATCH so the enabled-path
    semantics are exercised on every leg."""
    monkeypatch.delenv(_compat.NO_BATCH_ENV, raising=False)
    _compat.refresh()
    yield
    _compat.refresh()


class TestUnsupportedReasons:
    def test_common_path_is_supported(self, batching_on):
        assert unsupported_reason(trace=object()) is None

    def test_each_off_path_feature_is_named(self, batching_on):
        assert "trace" in unsupported_reason(trace=None)
        assert "predictor" in unsupported_reason(
            trace=object(), predictor=object()
        )
        assert "table" in unsupported_reason(trace=object(), table=object())
        assert "confidence" in unsupported_reason(
            trace=object(), confidence=object()
        )
        assert "icache" in unsupported_reason(
            trace=object(), model_icache=True
        )


class TestBatchSimulateJob:
    def test_job_results_match_scalar_simulate_jobs(self):
        """One batch_simulate job == N scalar simulate jobs, per entry."""
        from repro.runner import Runner, batch_simulate_job, simulate_job

        machines = [PLAYDOH_4W, PLAYDOH_8W]
        runner = Runner(jobs=1, cache=None)
        try:
            batch = batch_simulate_job(
                "compress", machines, scale=0.25, collect_metrics=True
            )
            scalars = [
                simulate_job("compress", m, scale=0.25, collect_metrics=True)
                for m in machines
            ]
            results = runner.run([batch] + scalars)
        finally:
            runner.close()
        batched = results[batch.key()]
        assert set(batched) == {m.fingerprint() for m in machines}
        for machine, job in zip(machines, scalars):
            assert dataclasses.asdict(
                batched[machine.fingerprint()]
            ) == dataclasses.asdict(results[job.key()])
