"""Batched profiler parity: column-wise counters vs streaming observers.

``batch_profile`` promises the identical :class:`ProfileData` the
scalar trace replay produces — same counters, same dict orders (both
are pickled into runner cache keys downstream).  ``column_stats`` is
additionally pinned against the real predictor objects it inlines.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batchsim.context import BatchContext
from repro.batchsim.profiler import batch_profile, column_stats
from repro.predict.base import _values_equal
from repro.predict.fcm import FCMPredictor
from repro.predict.stride import StridePredictor
from repro.profiling.profile_run import profile_program
from repro.trace import capture_trace
from repro.workloads.suite import load_suite

SUITE = load_suite(scale=0.25)
TRACES = {name: capture_trace(program) for name, program in SUITE.items()}


def scalar_column_stats(values):
    """Reference: one key driven through the real predictor objects,
    exactly as ``ValueProfiler.operation_executed`` does."""
    from repro.profiling.value_profile import LoadValueStats

    stride = StridePredictor()
    fcm = FCMPredictor(order=2)
    stats = LoadValueStats()
    for value in values:
        stats.executions += 1
        p = stride.predict(0)
        if p is not None and _values_equal(p, value):
            stats.stride_correct += 1
        p = fcm.predict(0)
        if p is not None and _values_equal(p, value):
            stats.fcm_correct += 1
        stride.update(0, value)
        fcm.update(0, value)
    return stats


class TestColumnStats:
    @settings(max_examples=200, deadline=None)
    @given(
        values=st.lists(
            st.one_of(
                st.integers(min_value=-8, max_value=8),
                st.integers(),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
            ),
            max_size=40,
        )
    )
    def test_matches_real_predictors(self, values):
        got = column_stats(values)
        want = scalar_column_stats(values)
        assert dataclasses.asdict(got) == dataclasses.asdict(want)

    def test_strided_sequence_saturates(self):
        stats = column_stats(list(range(0, 100, 3)))
        # Two-delta stride locks on after the second delta; the first
        # two predictions cannot be scored as hits.
        assert stats.stride_correct >= stats.executions - 3
        assert stats.best_rate > 0.9

    def test_periodic_sequence_favours_fcm(self):
        stats = column_stats([1, 7, 3, 1, 7, 3] * 20)
        assert stats.fcm_rate > stats.stride_rate


def assert_profiles_identical(a, b):
    assert a.blocks == b.blocks
    assert list(a.values.loads.keys()) == list(b.values.loads.keys())
    for op_id in a.values.loads:
        assert dataclasses.asdict(a.values.loads[op_id]) == dataclasses.asdict(
            b.values.loads[op_id]
        )
    ea, eb = a.execution, b.execution
    assert ea.dynamic_operations == eb.dynamic_operations
    assert ea.dynamic_blocks == eb.dynamic_blocks


@pytest.mark.parametrize("workload", sorted(SUITE))
class TestBatchProfileParity:
    def test_matches_replay_profile(self, workload):
        program = SUITE[workload]
        trace = TRACES[workload]
        scalar = profile_program(program, trace=trace)
        batched = batch_profile(program, trace, BatchContext())
        assert_profiles_identical(scalar, batched)

    def test_matches_replay_profile_with_alu(self, workload):
        program = SUITE[workload]
        trace = TRACES[workload]
        scalar = profile_program(program, trace=trace, profile_alu=True)
        batched = batch_profile(
            program, trace, BatchContext(), profile_alu=True
        )
        assert_profiles_identical(scalar, batched)
