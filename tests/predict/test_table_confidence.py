"""Unit tests for the value-prediction table and confidence estimation."""

import pytest

from repro.predict.confidence import ConfidenceConfig, ConfidenceEstimator
from repro.predict.stride import StridePredictor
from repro.predict.table import ValuePredictionTable


class TestValuePredictionTable:
    def test_unbounded_table_behaves_like_predictor(self):
        table = ValuePredictionTable(StridePredictor())
        for v in (2, 4, 6, 8):
            table.train("k", v)
        assert table.lookup("k") == 10
        assert table.tag_misses == 0

    def test_observe_combines_lookup_and_train(self):
        table = ValuePredictionTable(StridePredictor())
        assert table.observe("k", 5) is None
        table.observe("k", 10)
        table.observe("k", 15)
        assert table.observe("k", 20) == 20

    def test_capacity_conflicts_cause_tag_misses(self):
        table = ValuePredictionTable(StridePredictor(), capacity=1)
        for v in (1, 2, 3):
            table.train("a", v)
        # 'b' maps to the same (only) slot and evicts 'a'.
        table.train("b", 10)
        assert table.lookup("a") is None
        assert table.tag_misses == 1

    def test_reoccupation_restores_visibility(self):
        table = ValuePredictionTable(StridePredictor(), capacity=1)
        for v in (1, 2, 3):
            table.train("a", v)
        table.train("b", 10)
        table.train("a", 4)  # re-claims the slot
        assert table.lookup("a") is not None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ValuePredictionTable(capacity=0)

    def test_default_predictor_is_hybrid(self):
        table = ValuePredictionTable()
        assert table.predictor.name == "hybrid"

    def test_reset(self):
        table = ValuePredictionTable(StridePredictor(), capacity=4)
        table.train("a", 1)
        table.lookup("a")
        table.reset()
        assert table.lookups == 0
        assert table.lookup("a") is None


class TestConfidence:
    def test_threshold_gating(self):
        est = ConfidenceEstimator(ConfidenceConfig(max_count=4, increment=1, decrement=2, threshold=2))
        key = "op1"
        assert not est.confident(key)
        est.record(key, True)
        est.record(key, True)
        assert est.confident(key)

    def test_misprediction_penalised_harder(self):
        est = ConfidenceEstimator()
        key = "op1"
        for _ in range(10):
            est.record(key, True)
        level_before = est.level(key)
        est.record(key, False)
        assert level_before - est.level(key) == est.config.decrement

    def test_saturation(self):
        est = ConfidenceEstimator(ConfidenceConfig(max_count=3, threshold=2))
        for _ in range(10):
            est.record("k", True)
        assert est.level("k") == 3
        for _ in range(10):
            est.record("k", False)
        assert est.level("k") == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ConfidenceConfig(threshold=0)
        with pytest.raises(ValueError):
            ConfidenceConfig(max_count=4, threshold=5)
        with pytest.raises(ValueError):
            ConfidenceConfig(increment=0)

    def test_reset(self):
        est = ConfidenceEstimator()
        est.record("k", True)
        est.reset()
        assert est.level("k") == 0
