"""Unit tests for the DFCM predictor."""

import pytest

from repro.predict.dfcm import DFCMPredictor
from repro.predict.fcm import FCMPredictor
from repro.predict.stride import StridePredictor


def feed(predictor, values, key="k"):
    for v in values:
        predictor.observe(key, v)


class TestDFCM:
    def test_cold_start(self):
        p = DFCMPredictor()
        assert p.predict("k") is None
        p.update("k", 5)
        assert p.predict("k") is None

    def test_constant_stride(self):
        p = DFCMPredictor(order=2)
        feed(p, [10, 13, 16, 19, 22])
        assert p.predict("k") == 25

    def test_repeating_stride_pattern(self):
        """The DFCM signature case: a matrix walk (+1,+1,+1,+10) whose
        stride sequence repeats; plain stride prediction keeps missing
        at the row boundary, DFCM learns it."""
        values = [0]
        for _ in range(12):
            for stride in (1, 5, 10):  # unambiguous order-2 contexts
                values.append(values[-1] + stride)

        dfcm = DFCMPredictor(order=2)
        stride = StridePredictor()
        feed(dfcm, values)
        feed(stride, values)
        assert dfcm.stats.hit_rate > stride.stats.hit_rate
        assert dfcm.stats.hit_rate > 0.8  # perfect after a 6-step warmup

    def test_survives_rebase(self):
        """After a one-off jump, the stride context re-synchronises."""
        p = DFCMPredictor(order=2)
        feed(p, [0, 1, 2, 3, 1000, 1001, 1002, 1003, 1004])
        assert p.predict("k") == 1005

    def test_beats_fcm_on_non_repeating_values(self):
        """Values never repeat (monotonically increasing), so value-FCM
        has nothing to match contexts against; stride contexts repeat."""
        values = [0]
        for _ in range(15):
            for stride in (2, 5, 2):
                values.append(values[-1] + stride)
        dfcm = DFCMPredictor(order=2)
        fcm = FCMPredictor(order=2)
        feed(dfcm, values)
        feed(fcm, values)
        assert dfcm.stats.hit_rate > fcm.stats.hit_rate + 0.3

    def test_keys_independent(self):
        p = DFCMPredictor()
        feed(p, [1, 2, 3, 4], key="a")
        feed(p, [100, 90, 80, 70], key="b")
        assert p.predict("a") == 5
        assert p.predict("b") == 60

    def test_reset(self):
        p = DFCMPredictor()
        feed(p, [1, 2, 3, 4])
        p.reset()
        assert p.predict("k") is None
        assert p.stats.attempts == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DFCMPredictor(order=0)
        with pytest.raises(ValueError):
            DFCMPredictor(table_bits=40)

    def test_in_hybrid(self):
        from repro.predict.hybrid import HybridPredictor

        hybrid = HybridPredictor([StridePredictor(), DFCMPredictor()])
        values = [0]
        for _ in range(12):
            for stride in (1, 1, 7):
                values.append(values[-1] + stride)
        feed(hybrid, values)
        assert hybrid.chosen_component("k").name == "dfcm"
