"""Property-based tests of predictor invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predict.fcm import FCMPredictor
from repro.predict.hybrid import default_hybrid
from repro.predict.last_value import LastValuePredictor
from repro.predict.stride import StridePredictor

_PREDICTOR_FACTORIES = [
    LastValuePredictor,
    StridePredictor,
    FCMPredictor,
    default_hybrid,
]

values = st.lists(st.integers(min_value=-(2**31), max_value=2**31), min_size=1, max_size=80)


@settings(max_examples=40, deadline=None)
@given(stream=values, which=st.integers(min_value=0, max_value=3))
def test_stats_accounting_is_consistent(stream, which):
    """predictions + no_prediction == observations, correct <= predictions."""
    predictor = _PREDICTOR_FACTORIES[which]()
    for v in stream:
        predictor.observe("k", v)
    stats = predictor.stats
    assert stats.attempts == len(stream)
    assert 0 <= stats.correct <= stats.predictions
    assert 0.0 <= stats.accuracy <= 1.0
    assert 0.0 <= stats.hit_rate <= stats.coverage <= 1.0


@settings(max_examples=40, deadline=None)
@given(stream=values)
def test_stride_is_perfect_on_arithmetic_sequences(stream):
    """On a pure arithmetic sequence, two-delta stride misses at most the
    first two elements."""
    start, delta = stream[0], (stream[-1] % 17) - 8
    seq = [start + i * delta for i in range(20)]
    predictor = StridePredictor()
    for v in seq:
        predictor.observe("k", v)
    assert predictor.stats.correct >= len(seq) - 3


@settings(max_examples=40, deadline=None)
@given(
    pattern=st.lists(st.integers(min_value=0, max_value=9), min_size=3, max_size=5, unique=True),
    periods=st.integers(min_value=3, max_value=8),
)
def test_fcm_learns_any_unique_cycle(pattern, periods):
    """FCM order-2 predicts a repeating pattern perfectly once trained,
    provided contexts are unambiguous (unique elements guarantee it)."""
    predictor = FCMPredictor(order=2)
    stream = pattern * periods
    for v in stream:
        predictor.update("k", v)
    hits = 0
    for v in pattern * 2:
        if predictor.predict("k") == v:
            hits += 1
        predictor.update("k", v)
    assert hits == 2 * len(pattern)


@settings(max_examples=30, deadline=None)
@given(stream=values)
def test_keys_never_interfere(stream):
    """Training one key never changes another key's prediction."""
    predictor = default_hybrid()
    for v in [3, 6, 9, 12]:
        predictor.update("stable", v)
    expectation = predictor.predict("stable")
    for v in stream:
        predictor.update("other", v)
    assert predictor.predict("stable") == expectation


@settings(max_examples=30, deadline=None)
@given(stream=values)
def test_reset_restores_cold_state(stream):
    predictor = default_hybrid()
    for v in stream:
        predictor.observe("k", v)
    predictor.reset()
    assert predictor.predict("k") is None
    assert predictor.stats.attempts == 0
