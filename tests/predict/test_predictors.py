"""Unit tests for the value-predictor family."""

import pytest

from repro.predict.base import PredictorStats
from repro.predict.fcm import FCMPredictor
from repro.predict.hybrid import HybridPredictor, default_hybrid
from repro.predict.last_value import LastValuePredictor
from repro.predict.stride import StridePredictor


def feed(predictor, key, values):
    """Observe a sequence; return per-step predictions."""
    return [predictor.observe(key, v) for v in values]


class TestLastValue:
    def test_cold_start(self):
        p = LastValuePredictor()
        assert p.predict("k") is None

    def test_repeats(self):
        p = LastValuePredictor()
        feed(p, "k", [7, 7, 7, 7])
        assert p.stats.correct == 3  # first observation had no prediction
        assert p.stats.no_prediction == 1

    def test_keys_independent(self):
        p = LastValuePredictor()
        p.update("a", 1)
        p.update("b", 2)
        assert p.predict("a") == 1
        assert p.predict("b") == 2

    def test_reset(self):
        p = LastValuePredictor()
        p.update("a", 1)
        p.reset()
        assert p.predict("a") is None
        assert p.stats.attempts == 0


class TestStride:
    def test_perfect_stride(self):
        p = StridePredictor()
        feed(p, "k", [10, 13, 16, 19, 22])
        # 1st: no prediction; 2nd: last-value fallback misses; 3rd: the
        # stride is not committed until seen twice (two-delta), misses;
        # 4th and 5th hit.
        assert p.stats.correct == 2
        assert p.predict("k") == 25

    def test_constant_sequence(self):
        p = StridePredictor()
        feed(p, "k", [5, 5, 5, 5])
        assert p.stats.correct == 3

    def test_two_delta_survives_single_jump(self):
        p = StridePredictor()
        # Established stride of 1, one jump, then the stride resumes.
        feed(p, "k", [1, 2, 3, 4, 100, 101, 102])
        # After the jump, two-delta keeps stride 1: 100+1=101 hits.
        assert p.predict("k") == 103

    def test_one_delta_mode(self):
        p = StridePredictor(two_delta=False)
        feed(p, "k", [1, 2, 4, 8])
        # stride immediately tracks the last delta (8-4=4)
        assert p.predict("k") == 12

    def test_stride_of(self):
        p = StridePredictor()
        assert p.stride_of("k") is None
        feed(p, "k", [3, 6, 9])
        assert p.stride_of("k") == 3

    def test_float_strides(self):
        p = StridePredictor()
        feed(p, "k", [0.5, 1.0, 1.5])
        assert p.predict("k") == pytest.approx(2.0)


class TestFCM:
    def test_learns_repeating_pattern(self):
        p = FCMPredictor(order=2)
        pattern = [1, 7, 3] * 6
        feed(p, "k", pattern)
        # After one full period the context (7,3)->1, (3,1)->7, (1,7)->3.
        assert p.predict("k") is not None
        correct_tail = 0
        for v in pattern[:6]:
            if p.predict("k") == v:
                correct_tail += 1
            p.update("k", v)
        assert correct_tail == 6

    def test_stride_sequence_defeats_fcm(self):
        p = FCMPredictor(order=2)
        feed(p, "k", list(range(0, 40, 2)))
        # Every context is new, so FCM never predicts correctly.
        assert p.stats.correct == 0

    def test_needs_full_context(self):
        p = FCMPredictor(order=3)
        p.update("k", 1)
        p.update("k", 2)
        assert p.predict("k") is None

    def test_order_validation(self):
        with pytest.raises(ValueError):
            FCMPredictor(order=0)
        with pytest.raises(ValueError):
            FCMPredictor(table_bits=0)

    def test_reset(self):
        p = FCMPredictor()
        feed(p, "k", [1, 2, 1, 2, 1, 2])
        p.reset()
        assert p.predict("k") is None


class TestHybrid:
    def test_tracks_stride_on_arithmetic_sequences(self):
        p = default_hybrid()
        values = list(range(0, 60, 3))
        feed(p, "k", values)
        assert p.predict("k") == values[-1] + 3
        assert p.chosen_component("k").name == "stride"

    def test_tracks_fcm_on_repeating_sequences(self):
        p = default_hybrid()
        feed(p, "k", [4, 9, 2] * 8)
        assert p.chosen_component("k").name == "fcm"

    def test_accuracy_beats_both_on_mixed_keys(self):
        p = default_hybrid()
        stride_only = StridePredictor()
        fcm_only = FCMPredictor()
        streams = {
            "arith": [3 * i for i in range(30)],
            "cycle": [5, 1, 9] * 10,
        }
        for key, stream in streams.items():
            for v in stream:
                p.observe(key, v)
                stride_only.observe(key, v)
                fcm_only.observe(key, v)
        assert p.stats.hit_rate >= max(stride_only.stats.hit_rate, fcm_only.stats.hit_rate) - 0.1

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            HybridPredictor(components=[])

    def test_reset_clears_components(self):
        p = default_hybrid()
        feed(p, "k", [1, 2, 3])
        p.reset()
        assert p.predict("k") is None


class TestStats:
    def test_counters(self):
        stats = PredictorStats()
        assert stats.accuracy == 0.0
        assert stats.coverage == 0.0
        assert stats.hit_rate == 0.0
        stats.predictions = 8
        stats.correct = 6
        stats.no_prediction = 2
        assert stats.accuracy == pytest.approx(0.75)
        assert stats.coverage == pytest.approx(0.8)
        assert stats.hit_rate == pytest.approx(0.6)

    def test_per_key_stats(self):
        p = LastValuePredictor()
        feed(p, "a", [1, 1, 1])
        feed(p, "b", [1, 2, 3])
        assert p.key_stats("a").correct == 2
        assert p.key_stats("b").correct == 0
        assert p.key_stats("missing").attempts == 0
