"""Tests over the benchmark suite: structure, determinism, behaviour."""

import pytest

from repro.ir.printer import format_program
from repro.ir.verifier import verify_program
from repro.profiling.interpreter import run_program
from repro.profiling.profile_run import profile_program
from repro.workloads.kernels import LoopSpec, chain_loops
from repro.workloads.suite import (
    BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    benchmark_names,
    load_benchmark,
    load_suite,
)


class TestSuiteStructure:
    def test_paper_order(self):
        assert benchmark_names() == [
            "compress", "ijpeg", "li", "m88ksim", "vortex",
            "hydro2d", "swim", "tomcatv",
        ]
        assert INT_BENCHMARKS + FP_BENCHMARKS == benchmark_names()

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            load_benchmark("gcc")

    def test_load_suite_builds_all(self):
        suite = load_suite(scale=0.1)
        assert set(suite) == set(BENCHMARKS)


@pytest.mark.parametrize("name", benchmark_names())
class TestEveryBenchmark:
    def test_verifies(self, name):
        verify_program(load_benchmark(name, scale=0.1))

    def test_runs_to_halt(self, name):
        result = run_program(load_benchmark(name, scale=0.1))
        assert result.halted
        assert result.dynamic_operations > 0

    def test_deterministic(self, name):
        a = run_program(load_benchmark(name, scale=0.1))
        b = run_program(load_benchmark(name, scale=0.1))
        assert a.registers == b.registers
        assert a.dynamic_operations == b.dynamic_operations
        assert a.memory.snapshot() == b.memory.snapshot()

    def test_scale_controls_work(self, name):
        small = run_program(load_benchmark(name, scale=0.1))
        large = run_program(load_benchmark(name, scale=0.3))
        assert large.dynamic_operations > small.dynamic_operations

    def test_has_predictable_load_above_threshold(self, name):
        """Every benchmark must give the speculation pass something to
        chew on (the paper predicts loads in every benchmark)."""
        profile = profile_program(load_benchmark(name, scale=0.5))
        assert profile.values.predictable_loads(0.65)

    def test_has_unpredictable_loads_too(self, name):
        """And something it must leave alone — the suite exercises the
        threshold, not just the transform."""
        profile = profile_program(load_benchmark(name, scale=0.5))
        rates = [stats.best_rate for stats in profile.values.loads.values()]
        assert min(rates) < 0.65

    def test_loops_dominate_execution(self, name):
        profile = profile_program(load_benchmark(name, scale=0.3))
        entry_fraction = profile.blocks.frequency("entry")
        assert entry_fraction < 0.05

    def test_printable(self, name):
        text = format_program(load_benchmark(name, scale=0.1))
        assert name in text


class TestKernelHelpers:
    def test_loop_trip_count(self):
        from repro.ir.builder import FunctionBuilder
        from repro.ir.builder import ProgramBuilder

        pb = ProgramBuilder("k")
        fb = pb.function()
        body_calls = []
        chain_loops(
            fb,
            [LoopSpec("l1", 7, "i", lambda fb: body_calls.append(1) or fb.mov("x", 1))],
        )
        pb.add(fb.build())
        result = run_program(pb.build())
        # entry + 7 iterations + exit
        assert result.dynamic_blocks == 9

    def test_loops_chain_in_order(self):
        from repro.ir.builder import ProgramBuilder

        pb = ProgramBuilder("k")
        fb = pb.function()
        chain_loops(
            fb,
            [
                LoopSpec("first", 3, "i", lambda fb: fb.add("a", "a", 1)),
                LoopSpec("second", 4, "j", lambda fb: fb.add("b", "b", 1)),
            ],
        )
        pb.add(fb.build())
        result = run_program(pb.build())
        assert result.registers["a"] == 3
        assert result.registers["b"] == 4

    def test_zero_trip_rejected(self):
        from repro.ir.builder import FunctionBuilder

        fb = FunctionBuilder("f")
        with pytest.raises(ValueError, match="at least one trip"):
            chain_loops(fb, [LoopSpec("l", 0, "i", lambda fb: None)])

    def test_empty_loop_list_rejected(self):
        from repro.ir.builder import FunctionBuilder

        with pytest.raises(ValueError, match="at least one loop"):
            chain_loops(FunctionBuilder("f"), [])
