"""Tests for the value-stream generators (including hypothesis properties)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import values


class TestStrided:
    def test_basic(self):
        assert values.strided(4, start=2, stride=3) == [2, 5, 8, 11]

    def test_empty(self):
        assert values.strided(0) == []

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            values.strided(-1)


class TestNoisyStrided:
    def test_zero_breaks_is_pure_stride(self):
        rng = random.Random(0)
        out = values.noisy_strided(10, rng, start=5, stride=2, break_rate=0.0)
        assert out == values.strided(10, start=5, stride=2)

    def test_break_rate_validated(self):
        with pytest.raises(ValueError):
            values.noisy_strided(10, random.Random(0), break_rate=1.5)

    def test_deterministic_given_seed(self):
        a = values.noisy_strided(50, random.Random(7), break_rate=0.3)
        b = values.noisy_strided(50, random.Random(7), break_rate=0.3)
        assert a == b

    @settings(max_examples=20, deadline=None)
    @given(rate=st.floats(min_value=0.05, max_value=0.5), seed=st.integers(0, 100))
    def test_observed_predictability_tracks_break_rate(self, rate, seed):
        """A stride predictor's hit rate on the stream is roughly
        1 - 2*break_rate (each break costs up to two misses)."""
        from repro.predict.stride import StridePredictor

        stream = values.noisy_strided(400, random.Random(seed), break_rate=rate)
        predictor = StridePredictor()
        for v in stream:
            predictor.observe("k", v)
        hit = predictor.stats.hit_rate
        assert 1 - 2.6 * rate - 0.08 <= hit <= 1 - 0.55 * rate + 0.05


class TestRepeatingAndConstant:
    def test_repeating(self):
        assert values.repeating(5, [1, 2]) == [1, 2, 1, 2, 1]

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            values.repeating(5, [])

    def test_mostly_constant_rates(self):
        rng = random.Random(3)
        stream = values.mostly_constant(1000, rng, value=7, flip_rate=0.1, other=0)
        flips = sum(1 for v in stream if v == 0)
        assert 60 <= flips <= 140

    def test_random_values_in_range(self):
        stream = values.random_values(100, random.Random(0), lo=5, hi=10)
        assert all(5 <= v < 10 for v in stream)

    def test_random_floats_in_range(self):
        stream = values.random_floats(100, random.Random(0), lo=-1.0, hi=1.0)
        assert all(-1.0 <= v <= 1.0 for v in stream)


class TestSmoothField:
    def test_neighbouring_steps_bounded(self):
        field = values.smooth_field(200, random.Random(1), scale=10.0)
        for a, b in zip(field, field[1:]):
            assert abs(b - a) <= 1.0


class TestLinkedList:
    def test_sequential_layout_strides(self):
        image = values.linked_list_nodes(
            count=10, base=100, node_size=4, rng=random.Random(0), fragmentation=0.0
        )
        # next pointers of a sequential list stride by node_size
        addr = 100
        for _ in range(9):
            next_addr = image[addr]
            assert next_addr == addr + 4
            addr = next_addr
        # the list is circular
        assert image[addr] == 100

    def test_walk_covers_every_node(self):
        image = values.linked_list_nodes(
            count=20, base=0, node_size=2, rng=random.Random(5), fragmentation=0.5
        )
        addr, seen = 0, set()
        for _ in range(20):
            assert addr not in seen
            seen.add(addr)
            addr = image[addr]
        assert addr == 0
        assert len(seen) == 20

    def test_payload_pattern_in_walk_order(self):
        image = values.linked_list_nodes(
            count=6,
            base=0,
            node_size=2,
            rng=random.Random(2),
            fragmentation=0.8,
            payload_pattern=(10, 20),
        )
        addr = 0
        payloads = []
        for _ in range(6):
            payloads.append(image[addr + 1])
            addr = image[addr]
        assert payloads == [10, 20, 10, 20, 10, 20]

    def test_payload_values_override(self):
        image = values.linked_list_nodes(
            count=4,
            base=0,
            node_size=2,
            rng=random.Random(2),
            payload_values=[9, 8, 7, 6],
        )
        addr = 0
        payloads = []
        for _ in range(4):
            payloads.append(image[addr + 1])
            addr = image[addr]
        assert payloads == [9, 8, 7, 6]

    def test_short_payload_values_rejected(self):
        with pytest.raises(ValueError, match="cover every node"):
            values.linked_list_nodes(
                count=4, base=0, node_size=2, rng=random.Random(0), payload_values=[1]
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            values.linked_list_nodes(count=0, base=0, node_size=2, rng=random.Random(0))
        with pytest.raises(ValueError):
            values.linked_list_nodes(
                count=3, base=0, node_size=2, rng=random.Random(0), fragmentation=2.0
            )
