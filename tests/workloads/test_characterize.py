"""Tests for the workload characterisation module."""

import pytest

from repro.workloads.characterize import (
    WorkloadProfile,
    characterize,
    characterize_suite,
    render,
)
from repro.workloads.suite import load_benchmark


@pytest.fixture(scope="module")
def profiles():
    return characterize_suite(scale=0.4)


class TestCharacterize:
    def test_suite_covered(self, profiles):
        assert len(profiles) == 8
        assert {p.name for p in profiles} == {
            "compress", "ijpeg", "li", "m88ksim", "vortex",
            "hydro2d", "swim", "tomcatv",
        }

    def test_shares_partition_unity(self, profiles):
        for p in profiles:
            assert p.alu_share + p.memory_share + p.branch_share == pytest.approx(1.0)

    def test_risc_envelope(self, profiles):
        """Op mixes sit in the classic envelope: ALU-dominated, memory
        second, branches under 15%."""
        for p in profiles:
            assert 0.5 <= p.alu_share <= 0.9
            assert 0.1 <= p.memory_share <= 0.4
            assert p.branch_share <= 0.15
            assert 0.0 < p.load_density <= p.memory_share

    def test_fp_codes_less_predictable_than_int(self, profiles):
        """The literature shape the suite must reproduce: FP data is far
        less value-predictable than integer data."""
        by_name = {p.name: p for p in profiles}
        fp_mean = (
            by_name["swim"].mean_best_rate + by_name["tomcatv"].mean_best_rate
        ) / 2
        int_mean = (
            by_name["compress"].mean_best_rate + by_name["vortex"].mean_best_rate
        ) / 2
        assert int_mean > fp_mean + 0.2

    def test_hot_blocks_have_real_chains(self, profiles):
        for p in profiles:
            assert p.hot_block_height >= 5.0

    def test_reuses_supplied_profile(self):
        from repro.profiling.profile_run import profile_program

        program = load_benchmark("compress", scale=0.2)
        profile = profile_program(program)
        a = characterize(program, profile=profile)
        b = characterize(program)
        assert a == b

    def test_render(self, profiles):
        text = render(profiles)
        assert "workload" in text
        assert "compress" in text and "tomcatv" in text
