"""Capture/replay correctness: profiles, simulations and round trips.

The trace layer's contract is *byte identity*: replaying a captured
trace through the profilers or the simulation observer must produce
exactly what live interpretation produces — results, metrics snapshots,
access counters and all.
"""

import dataclasses
import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import compile_program
from repro.core.program_sim import simulate_program
from repro.ir.builder import ProgramBuilder
from repro.machine import PLAYDOH_4W
from repro.profiling.interpreter import ExecutionLimitExceeded
from repro.profiling.profile_run import profile_program
from repro.trace import (
    TraceError,
    TraceMismatch,
    ValueTrace,
    capture_trace,
    program_digest,
    replay_trace,
)
from repro.workloads.suite import load_suite

SUITE = load_suite(scale=0.25)
TRACES = {name: capture_trace(program) for name, program in SUITE.items()}


def assert_profiles_identical(a, b):
    assert a.blocks == b.blocks
    assert a.values.loads.keys() == b.values.loads.keys()
    for op_id in a.values.loads:
        assert dataclasses.asdict(a.values.loads[op_id]) == dataclasses.asdict(
            b.values.loads[op_id]
        )
    ea, eb = a.execution, b.execution
    assert ea.dynamic_operations == eb.dynamic_operations
    assert ea.dynamic_blocks == eb.dynamic_blocks
    assert ea.registers == eb.registers
    assert ea.memory.snapshot() == eb.memory.snapshot()
    assert ea.loads_executed == eb.loads_executed
    assert ea.stores_executed == eb.stores_executed
    assert ea.halted == eb.halted


@pytest.mark.parametrize("workload", sorted(SUITE))
class TestSuiteReplay:
    def test_profile_replay_is_identical(self, workload):
        program = SUITE[workload]
        live = profile_program(program)
        replayed = profile_program(program, trace=TRACES[workload])
        assert_profiles_identical(live, replayed)

    def test_alu_profile_replay_is_identical(self, workload):
        program = SUITE[workload]
        live = profile_program(program, profile_alu=True)
        replayed = profile_program(
            program, profile_alu=True, trace=TRACES[workload]
        )
        assert_profiles_identical(live, replayed)

    def test_simulation_replay_is_identical(self, workload):
        program = SUITE[workload]
        compilation = compile_program(
            program, PLAYDOH_4W, profile_program(program)
        )
        live = simulate_program(compilation, collect_metrics=True)
        replayed = simulate_program(
            compilation, collect_metrics=True, trace=TRACES[workload]
        )
        assert dataclasses.asdict(live) == dataclasses.asdict(replayed)

    def test_replayed_memory_counters_match_capture(self, workload):
        """Satellite: a replayed run must report the captured run's
        load/store counts, not zero."""
        trace = TRACES[workload]
        result = replay_trace(trace, SUITE[workload])
        assert result.loads_executed == trace.loads_executed
        assert result.stores_executed == trace.stores_executed
        assert result.loads_executed > 0
        assert result.stores_executed > 0

    def test_file_roundtrip_replays_identically(self, workload, tmp_path):
        trace = TRACES[workload]
        path = trace.save(tmp_path / f"{workload}.trace.gz")
        loaded = ValueTrace.load(path)
        assert dataclasses.asdict(loaded) == dataclasses.asdict(trace)
        live = profile_program(SUITE[workload])
        replayed = profile_program(SUITE[workload], trace=loaded)
        assert_profiles_identical(live, replayed)


class TestMismatchDetection:
    def test_wrong_program_is_rejected(self):
        with pytest.raises(TraceMismatch, match="different program"):
            replay_trace(TRACES["compress"], SUITE["li"])

    def test_mutated_block_is_rejected(self):
        program = load_suite(scale=0.25)["compress"]
        trace = capture_trace(program)
        # Mutating a block after capture invalidates both the digest and
        # the per-block opcode signature.
        labels = list(trace.labels)
        a = program.main.block(labels[0])
        b = program.main.block(labels[1])
        a.operations, b.operations = b.operations, a.operations
        with pytest.raises(TraceMismatch):
            replay_trace(trace, program)

    def test_truncated_value_stream_is_rejected(self):
        trace = TRACES["compress"]
        broken = dataclasses.replace(trace, values=trace.values[:-1])
        with pytest.raises(TraceMismatch, match="ran out of values"):
            profile_program(SUITE["compress"], trace=broken)

    def test_oversized_value_stream_is_rejected(self):
        trace = TRACES["compress"]
        broken = dataclasses.replace(trace, values=trace.values + [0])
        with pytest.raises(TraceMismatch):
            replay_trace(broken, SUITE["compress"])

    def test_limit_budget_is_enforced_on_replay(self):
        trace = TRACES["compress"]
        with pytest.raises(ExecutionLimitExceeded, match="compress: exceeded"):
            replay_trace(trace, SUITE["compress"], max_operations=10)


class TestFormat:
    def test_digest_ignores_operation_ids(self):
        a = load_suite(scale=0.25)["swim"]
        b = load_suite(scale=0.25)["swim"]  # freshly numbered ops
        ids_a = [op.op_id for blk in a.main for op in blk.operations]
        ids_b = [op.op_id for blk in b.main for op in blk.operations]
        assert ids_a != ids_b
        assert program_digest(a) == program_digest(b)

    def test_digest_sees_initial_state(self):
        a = load_suite(scale=0.25)["swim"]
        b = load_suite(scale=0.25)["swim"]
        b.poke(99999, 1)
        assert program_digest(a) != program_digest(b)

    def test_unsupported_schema_version_is_rejected(self):
        obj = TRACES["compress"].to_json_obj()
        obj["schema_version"] = 999
        with pytest.raises(TraceError, match="schema version 999"):
            ValueTrace.from_json_obj(obj)

    def test_malformed_object_is_rejected(self):
        with pytest.raises(TraceError, match="malformed"):
            ValueTrace.from_json_obj({"schema_version": 1})

    def test_unreadable_file_is_rejected(self, tmp_path):
        path = tmp_path / "bogus.trace.gz"
        path.write_bytes(b"not gzip at all")
        with pytest.raises(TraceError, match="cannot read"):
            ValueTrace.load(path)

    def test_memory_keys_survive_json(self):
        trace = TRACES["compress"]
        rt = ValueTrace.from_json_obj(
            json.loads(json.dumps(trace.to_json_obj()))
        )
        assert rt.final_memory == trace.final_memory
        assert all(isinstance(k, int) for k in rt.final_memory)


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=-(2**30), max_value=2**30) | st.floats(
            allow_nan=False, allow_infinity=False, width=32
        ),
        min_size=1,
        max_size=16,
    ),
    iterations=st.integers(min_value=1, max_value=8),
)
def test_property_roundtrip_replay(values, iterations):
    """serialize -> load -> replay reproduces the live profile for
    arbitrary array contents and loop lengths."""
    pb = ProgramBuilder("prop")
    fb = pb.function()
    fb.block("entry")
    fb.mov("base", 1000)
    fb.mov("i", 0)
    fb.br("loop")
    fb.block("loop")
    fb.add("addr", "base", "i")
    fb.load("x", "addr")
    fb.mul("y", "x", 3)
    fb.store("y", "addr")
    fb.add("i", "i", 1)
    fb.cmplt("c", "i", len(values) * iterations)
    fb.brcond("c", "loop", "done")
    fb.block("done")
    fb.halt()
    pb.add(fb.build())
    program = pb.build()
    for i, v in enumerate(values * iterations):
        program.poke(1000 + i, v)

    trace = capture_trace(program)
    with tempfile.TemporaryDirectory() as tmp:
        loaded = ValueTrace.load(trace.save(Path(tmp) / "t.gz"))
    live = profile_program(program)
    replayed = profile_program(program, trace=loaded)
    assert_profiles_identical(live, replayed)
