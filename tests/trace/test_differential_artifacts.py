"""End-to-end differential: every table/figure artifact is byte-identical
across {legacy interpreter, specialized interpreter, trace replay}.

This is the acceptance gate for the whole fast path: if any layer
perturbs a single predicted value or block count, a paper artifact
diverges and this suite catches it.
"""

import dataclasses

import pytest

from repro.evaluation import figure8, table2, table3, table4
from repro.evaluation.experiment import Evaluation, EvaluationSettings
from repro.profiling.interpreter import SLOW_INTERP_ENV
from repro.trace import NO_TRACE_ENV, TraceStore, reset_default_store

#: (mode name, REPRO_SLOW_INTERP, REPRO_NO_TRACE)
MODES = [
    ("legacy", "1", "1"),
    ("specialized", None, "1"),
    ("replay", None, None),
]

SETTINGS = EvaluationSettings(scale=0.25)

EXPERIMENTS = {
    "table2": table2.compute,
    "table3": table3.compute,
    "table4": table4.compute,
    "figure8": figure8.compute,
}


def _rows_as_data(rows):
    return [
        dataclasses.asdict(row) if dataclasses.is_dataclass(row) else row
        for row in rows
    ]


@pytest.fixture(autouse=True)
def clean_trace_state():
    reset_default_store()
    yield
    reset_default_store()


def _compute_all(monkeypatch, slow, no_trace):
    for env, value in ((SLOW_INTERP_ENV, slow), (NO_TRACE_ENV, no_trace)):
        if value is None:
            monkeypatch.delenv(env, raising=False)
        else:
            monkeypatch.setenv(env, value)
    evaluation = Evaluation(SETTINGS, trace_store=TraceStore())
    out = {}
    for name, compute in EXPERIMENTS.items():
        out[name] = _rows_as_data(compute(evaluation))
    return out


def test_all_artifacts_identical_across_modes(monkeypatch):
    baseline_mode, *other_modes = MODES
    baseline = _compute_all(monkeypatch, baseline_mode[1], baseline_mode[2])
    for mode, slow, no_trace in other_modes:
        candidate = _compute_all(monkeypatch, slow, no_trace)
        for experiment in EXPERIMENTS:
            assert candidate[experiment] == baseline[experiment], (
                f"{experiment} diverged under mode {mode!r}"
            )


def test_rendered_tables_identical_across_modes(monkeypatch):
    """The human-facing renderings (what the CLI prints and the docs
    quote) are byte-identical too."""
    rendered = []
    for _mode, slow, no_trace in MODES:
        for env, value in (
            (SLOW_INTERP_ENV, slow), (NO_TRACE_ENV, no_trace)
        ):
            if value is None:
                monkeypatch.delenv(env, raising=False)
            else:
                monkeypatch.setenv(env, value)
        reset_default_store()
        evaluation = Evaluation(SETTINGS, trace_store=TraceStore())
        rendered.append(
            "\n\n".join(
                [
                    table2.render(table2.compute(evaluation)),
                    table4.render(table4.compute(evaluation)),
                    figure8.render(figure8.compute(evaluation)),
                ]
            )
        )
    assert rendered[0] == rendered[1] == rendered[2]
