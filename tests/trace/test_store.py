"""TraceStore caching semantics and the REPRO_NO_TRACE escape hatch."""

import dataclasses

import pytest

from repro.evaluation.experiment import Evaluation, EvaluationSettings
from repro.trace import (
    NO_TRACE_ENV,
    TraceStore,
    capture_trace,
    default_store,
    replay_enabled,
    reset_default_store,
)
from repro.workloads.suite import load_benchmark, load_suite


@pytest.fixture(autouse=True)
def fresh_default_store(monkeypatch):
    # These tests exercise replay semantics; pin the gate open so an
    # ambient REPRO_NO_TRACE (e.g. the no-trace CI leg) can't starve
    # them.  TestEnvGate manages the variable explicitly per test.
    monkeypatch.delenv(NO_TRACE_ENV, raising=False)
    reset_default_store()
    yield
    reset_default_store()


class TestTraceStore:
    def test_capture_once_then_hit(self):
        store = TraceStore()
        program = load_benchmark("compress", scale=0.25)
        first = store.get_or_capture(program)
        second = store.get_or_capture(program)
        assert first is second
        assert store.captures == 1
        assert store.hits == 1
        assert store.misses == 1

    def test_structurally_identical_programs_share_an_entry(self):
        """Two separately built (differently op-numbered) copies of the
        same benchmark hit the same trace — the sweep-sharing property."""
        store = TraceStore()
        store.get_or_capture(load_benchmark("swim", scale=0.25))
        store.get_or_capture(load_benchmark("swim", scale=0.25))
        assert store.captures == 1
        assert store.hits == 1

    def test_lru_eviction(self):
        store = TraceStore(capacity=2)
        suite = load_suite(scale=0.25)
        for name in ("compress", "li", "swim"):
            store.get_or_capture(suite[name])
        assert len(store) == 2
        # compress was evicted; li and swim still hit.
        assert store.get(suite["compress"]) is None
        assert store.get(suite["li"]) is not None
        assert store.get(suite["swim"]) is not None

    def test_oversized_traces_are_served_but_not_retained(self):
        store = TraceStore(max_values=1)
        program = load_benchmark("compress", scale=0.25)
        trace = store.get_or_capture(program)
        assert trace.n_values > 1
        assert len(store) == 0
        assert store.get_or_capture(program) is not trace
        assert store.captures == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)

    def test_explicit_put_and_clear(self):
        store = TraceStore()
        trace = capture_trace(load_benchmark("li", scale=0.25))
        store.put(trace)
        assert len(store) == 1
        store.clear()
        assert len(store) == 0


class TestEnvGate:
    def test_replay_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(NO_TRACE_ENV, raising=False)
        assert replay_enabled()

    def test_no_trace_disables_replay(self, monkeypatch):
        monkeypatch.setenv(NO_TRACE_ENV, "1")
        assert not replay_enabled()

    def test_evaluation_skips_store_when_disabled(self, monkeypatch):
        monkeypatch.setenv(NO_TRACE_ENV, "1")
        store = TraceStore()
        settings = EvaluationSettings(scale=0.2).with_benchmarks(["compress"])
        evaluation = Evaluation(settings, trace_store=store)
        evaluation.profile("compress")
        evaluation.simulation("compress", evaluation.machine_4w)
        assert store.captures == 0
        assert len(store) == 0


class TestEvaluationIntegration:
    def test_sweep_shares_one_interpretation(self):
        """Separate Evaluations at different thresholds against one
        store capture once and replay thereafter."""
        store = TraceStore()
        results = []
        for threshold in (0.5, 0.8):
            settings = (
                EvaluationSettings(scale=0.2)
                .with_threshold(threshold)
                .with_benchmarks(["compress"])
            )
            evaluation = Evaluation(settings, trace_store=store)
            results.append(
                evaluation.simulation("compress", evaluation.machine_4w)
            )
        assert store.captures == 1
        assert store.hits >= 2  # profile + second sweep point's stages
        # The sweep is real: different thresholds, comparable results.
        assert all(r.cycles_proposed > 0 for r in results)

    def test_replay_results_equal_no_trace_results(self, monkeypatch):
        settings = EvaluationSettings(scale=0.2).with_benchmarks(["li"])

        monkeypatch.setenv(NO_TRACE_ENV, "1")
        live = Evaluation(settings).simulation("li", Evaluation().machine_4w)

        monkeypatch.delenv(NO_TRACE_ENV)
        replayed = Evaluation(settings, trace_store=TraceStore()).simulation(
            "li", Evaluation().machine_4w
        )
        assert dataclasses.asdict(live) == dataclasses.asdict(replayed)

    def test_default_store_is_shared_process_wide(self):
        # The second Evaluation's profile is served by the shared
        # build/profile products, so it is the *simulation* read that
        # exercises the default store again (and must hit, not
        # re-capture).
        settings = EvaluationSettings(scale=0.2).with_benchmarks(["swim"])
        first = Evaluation(settings)
        first.profile("swim")
        second = Evaluation(settings)
        second.simulation("swim", second.machine_4w)
        assert default_store().captures == 1
        assert default_store().hits >= 1
