"""Cache backends: SQLite store, HTTP client, and the spec resolver."""

from __future__ import annotations

import hashlib
import threading

import pytest

from repro.runner.cache import CacheBackend, DiskCache
from repro.service.backends import HTTPCache, SQLiteCache, make_cache
from repro.service.broker import Broker
from repro.service.queue import SweepQueue


def _key(seed: str) -> str:
    return hashlib.sha256(seed.encode()).hexdigest()


class TestSQLiteCache:
    def test_roundtrip(self, tmp_path):
        cache = SQLiteCache(tmp_path / "c.db")
        value = {"cycles": 1234, "name": "li"}
        cache.put(_key("a"), value, manifest={"stage": "simulate"})
        hit, restored = cache.get(_key("a"))
        assert hit and restored == value
        assert cache.hits == 1 and cache.misses == 0

    def test_miss(self, tmp_path):
        cache = SQLiteCache(tmp_path / "c.db")
        hit, value = cache.get(_key("absent"))
        assert not hit and value is None
        assert cache.misses == 1

    def test_has_without_decoding(self, tmp_path):
        cache = SQLiteCache(tmp_path / "c.db")
        assert not cache.has(_key("a"))
        cache.put(_key("a"), 1)
        assert cache.has(_key("a"))

    def test_evict(self, tmp_path):
        cache = SQLiteCache(tmp_path / "c.db")
        cache.put(_key("a"), 1)
        cache.evict(_key("a"))
        assert not cache.has(_key("a"))

    def test_corrupt_entry_is_a_miss_and_gets_evicted(self, tmp_path):
        cache = SQLiteCache(tmp_path / "c.db")
        cache.store_bytes(_key("bad"), b"\x80corrupt", {"stage": "simulate"})
        hit, value = cache.get(_key("bad"))
        assert not hit and value is None
        assert not cache.has(_key("bad"))

    def test_last_writer_wins_on_same_key(self, tmp_path):
        cache = SQLiteCache(tmp_path / "c.db")
        cache.put(_key("a"), "first")
        cache.put(_key("a"), "second")
        assert cache.get(_key("a")) == (True, "second")
        assert cache.stats().entries == 1

    def test_stats_by_stage(self, tmp_path):
        cache = SQLiteCache(tmp_path / "c.db")
        cache.put(_key("a"), [1] * 100, manifest={"stage": "simulate"})
        cache.put(_key("b"), [2] * 100, manifest={"stage": "simulate"})
        cache.put(_key("c"), "p", manifest={"stage": "profile"})
        stats = cache.stats()
        assert stats.backend == "sqlite"
        assert stats.entries == 3
        assert stats.by_stage == {"simulate": 2, "profile": 1}
        assert stats.total_bytes > 0
        assert stats.bytes_by_stage["simulate"] > stats.bytes_by_stage["profile"]

    def test_clear_returns_count(self, tmp_path):
        cache = SQLiteCache(tmp_path / "c.db")
        for seed in "abc":
            cache.put(_key(seed), seed)
        assert cache.clear() == 3
        assert cache.stats().entries == 0

    def test_disabled_mode_is_a_noop(self, tmp_path):
        cache = SQLiteCache(tmp_path / "c.db", enabled=False)
        cache.put(_key("a"), 1)
        assert cache.get(_key("a")) == (False, None)
        assert not (tmp_path / "c.db").exists() or cache.stats().entries == 0

    def test_is_marked_shared(self, tmp_path):
        assert SQLiteCache(tmp_path / "c.db").shared
        assert not DiskCache(root=tmp_path).shared

    def test_concurrent_threads_hammering_one_file(self, tmp_path):
        cache = SQLiteCache(tmp_path / "c.db")
        errors = []

        def work(worker: int) -> None:
            try:
                local = SQLiteCache(tmp_path / "c.db")
                for i in range(25):
                    # Half the keys are contended across all workers,
                    # half are private — both must survive.
                    shared_key = _key(f"shared-{i % 5}")
                    local.put(shared_key, {"i": i % 5})
                    private_key = _key(f"worker-{worker}-{i}")
                    local.put(private_key, (worker, i))
                    assert local.get(private_key) == (True, (worker, i))
                    hit, value = local.get(shared_key)
                    assert hit and value == {"i": i % 5}
                local.close()
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(n,)) for n in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # 5 shared keys + 6 workers * 25 private keys.
        assert cache.stats().entries == 5 + 6 * 25


@pytest.fixture()
def live_broker(tmp_path):
    queue = SweepQueue(tmp_path / "queue.db")
    cache = SQLiteCache(tmp_path / "cache.db")
    broker = Broker(queue, cache)
    broker.start()
    yield broker
    broker.stop()
    cache.close()


class TestHTTPCache:
    def test_roundtrip_through_a_live_broker(self, live_broker):
        cache = HTTPCache(live_broker.url)
        value = {"cycles": 77}
        cache.put(_key("a"), value, manifest={"stage": "simulate"})
        assert cache.get(_key("a")) == (True, value)
        # The broker's own backend really holds it.
        assert live_broker.cache.has(_key("a"))

    def test_miss_and_evict(self, live_broker):
        cache = HTTPCache(live_broker.url)
        assert cache.get(_key("absent")) == (False, None)
        cache.put(_key("a"), 1)
        cache.evict(_key("a"))
        assert not cache.has(_key("a"))

    def test_stats_proxy(self, live_broker):
        cache = HTTPCache(live_broker.url)
        cache.put(_key("a"), [0] * 50, manifest={"stage": "simulate"})
        stats = cache.stats()
        assert stats.backend == "http"
        assert stats.entries == 1
        assert stats.by_stage == {"simulate": 1}

    def test_clear_proxy(self, live_broker):
        cache = HTTPCache(live_broker.url)
        cache.put(_key("a"), 1)
        cache.put(_key("b"), 2)
        assert cache.clear() == 2
        assert cache.stats().entries == 0

    def test_url_normalisation(self):
        assert HTTPCache("http://h:1").url == "http://h:1/cache"
        assert HTTPCache("http://h:1/").url == "http://h:1/cache"
        assert HTTPCache("http://h:1/cache").url == "http://h:1/cache"

    def test_unreachable_broker_degrades_to_misses(self):
        # A port nothing listens on: gets miss, puts drop, nothing raises.
        cache = HTTPCache("http://127.0.0.1:9", timeout=0.5)
        cache.put(_key("a"), 1)
        assert cache.get(_key("a")) == (False, None)
        assert cache.stats().entries == 0
        assert cache.clear() == 0


class TestMakeCache:
    def test_default_is_disk(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_URL", raising=False)
        cache = make_cache(None, default_root=tmp_path)
        assert isinstance(cache, DiskCache)
        assert cache.root == tmp_path

    def test_disk_specs(self, tmp_path):
        assert isinstance(make_cache("disk"), DiskCache)
        rooted = make_cache(f"disk:{tmp_path}/store")
        assert isinstance(rooted, DiskCache)
        assert rooted.root == tmp_path / "store"
        bare_dir = make_cache(str(tmp_path / "elsewhere"))
        assert isinstance(bare_dir, DiskCache)

    def test_sqlite_specs(self, tmp_path):
        explicit = make_cache(f"sqlite:{tmp_path}/c.db")
        assert isinstance(explicit, SQLiteCache)
        assert explicit.path == tmp_path / "c.db"
        defaulted = make_cache("sqlite", default_root=tmp_path)
        assert isinstance(defaulted, SQLiteCache)
        assert defaulted.path == tmp_path / "cache.db"
        by_suffix = make_cache(str(tmp_path / "bare.sqlite3"))
        assert isinstance(by_suffix, SQLiteCache)

    def test_http_specs(self):
        cache = make_cache("http://broker:8731")
        assert isinstance(cache, HTTPCache)
        assert isinstance(make_cache("https://broker:8731"), HTTPCache)

    def test_env_var_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_URL", f"sqlite:{tmp_path}/env.db")
        cache = make_cache(None)
        assert isinstance(cache, SQLiteCache)
        assert cache.path == tmp_path / "env.db"

    def test_explicit_spec_beats_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_URL", "http://ignored:1")
        assert isinstance(make_cache("disk", default_root=tmp_path), DiskCache)

    def test_enabled_flag_propagates(self, tmp_path):
        for spec in ("disk", f"sqlite:{tmp_path}/c.db", "http://h:1"):
            cache = make_cache(spec, enabled=False)
            assert isinstance(cache, CacheBackend)
            assert not cache.enabled
