"""Service telemetry: /metrics ground truth, fleet view, repro-top.

The loopback fixture runs a real broker + two worker threads; the tests
assert that what ``GET /metrics`` reports agrees with the queue's own
bookkeeping (counters vs. SQLite state), that the fleet endpoints see
every worker, that ``repro-top --once --json`` reports a finished warm
sweep with a ≥0.9 cache-hit ratio, and that running with telemetry
disabled leaves sweep outputs byte-identical.
"""

from __future__ import annotations

import io
import json
import threading
import time
from typing import List

import pytest

from repro.obs.logging import JsonLogger, log_context
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import parse_exposition
from repro.runner.jobs import Job, JobSpec, register_stage
from repro.runner.retry import RetryPolicy
from repro.service.backends import SQLiteCache
from repro.service.broker import Broker
from repro.service.client import ServiceClient, ServiceRunner
from repro.service.queue import SweepQueue
from repro.service.top import collect, main as top_main, render, series_total
from repro.service.worker import Worker, main as worker_main

FAST_RETRY = RetryPolicy(base=0.001, factor=1.0, jitter=0.0, max_delay=0.01)


def _echo(spec: JobSpec, deps):
    return {"benchmark": spec.benchmark, "token": spec.param("token")}


register_stage("tel-echo", _echo)


def _jobs(count: int) -> List[Job]:
    return [
        Job(JobSpec("tel-echo", "x", params=(("token", n),)))
        for n in range(count)
    ]


class Loopback:
    """Broker + N in-process workers, telemetry enabled end to end."""

    def __init__(self, tmp_path, metrics: MetricsRegistry = None):
        self.cache = SQLiteCache(tmp_path / "cache.db")
        self.queue = SweepQueue(tmp_path / "queue.db")
        self.broker = Broker(self.queue, self.cache, metrics=metrics).start()
        self.url = self.broker.url
        self.workers: List[Worker] = []
        self.threads: List[threading.Thread] = []

    def spawn_workers(self, count: int = 2, **kw) -> List[Worker]:
        kw.setdefault("status_interval", 0.1)
        spawned = []
        for n in range(len(self.workers), len(self.workers) + count):
            worker = Worker(
                ServiceClient(self.url),
                self.cache,
                name=f"tel-w{n}",
                poll=0.05,
                **kw,
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            self.workers.append(worker)
            self.threads.append(thread)
            spawned.append(worker)
        return spawned

    def close(self) -> None:
        for worker in self.workers:
            worker.stop()
        for thread in self.threads:
            thread.join(timeout=10.0)
        self.broker.stop()
        self.cache.close()


@pytest.fixture()
def loopback(tmp_path):
    service = Loopback(tmp_path)
    yield service
    service.close()


def _await_series(client, family, minimum, timeout=5.0):
    """Poll /metrics until a counter family reaches ``minimum``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        samples = parse_exposition(client.metrics_text())
        if series_total(samples, family) >= minimum:
            return samples
        time.sleep(0.05)
    raise AssertionError(
        f"{family} never reached {minimum}: "
        f"{series_total(parse_exposition(client.metrics_text()), family)}"
    )


class TestMetricsGroundTruth:
    def test_scrape_agrees_with_queue_after_two_worker_sweep(self, loopback):
        loopback.spawn_workers(2)
        jobs = _jobs(8)
        ServiceRunner(loopback.url).run(jobs)

        client = ServiceClient(loopback.url)
        # Worker counters arrive via status heartbeats — wait for them.
        samples = _await_series(client, "repro_worker_jobs_done_total", 8)

        # Queue counters match the sweep: every job leased exactly once,
        # completed ok exactly once.
        assert samples["repro_service_leases_total"] == 8
        assert samples['repro_service_completes_total{label="ok"}'] == 8
        assert samples["repro_service_jobs_new_total"] == 8
        # Current-state gauges mirror the queue's SQLite ground truth.
        counts = loopback.queue.counts()
        assert samples['repro_service_jobs{state="done"}'] == counts["jobs"]["done"]
        assert samples["repro_service_sweeps"] == counts["sweeps"]
        assert samples["repro_service_pending_ready"] == 0
        # Latency summaries carry one observation per lease/complete.
        assert (
            series_total(samples, "repro_service_queue_wait_seconds_count") == 8
        )
        assert (
            series_total(
                samples, "repro_service_lease_to_complete_seconds_count"
            )
            == 8
        )
        # Both workers pushed per-worker series; their sum is the total.
        per_worker = [
            samples.get(f'repro_worker_jobs_done_total{{worker="tel-w{n}"}}', 0)
            for n in (0, 1)
        ]
        assert sum(per_worker) == 8
        # Fleet gauges: one liveness age per worker.
        assert samples["repro_service_workers"] == 2
        for n in (0, 1):
            key = (
                "repro_service_worker_last_heartbeat_age_seconds"
                f'{{worker="tel-w{n}"}}'
            )
            assert samples[key] >= 0
        # The broker's shared cache saw a write per job.
        assert (
            series_total(samples, "repro_service_cache_written_bytes_total") > 0
            or series_total(samples, "repro_worker_cache_written_bytes_total")
            > 0
        )
        # HTTP route instrumentation covered the sweep's requests.
        assert samples['repro_service_http_requests_total{label="lease"}'] >= 8
        assert samples['repro_service_http_requests_total{label="complete"}'] == 8

    def test_metrics_content_type_and_uptime(self, loopback):
        import urllib.request

        with urllib.request.urlopen(f"{loopback.url}/metrics") as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            samples = parse_exposition(response.read().decode("utf-8"))
        assert samples["repro_service_uptime_seconds"] >= 0


class TestFleetEndpoints:
    def test_workers_endpoint_sees_the_fleet(self, loopback):
        loopback.spawn_workers(2)
        client = ServiceClient(loopback.url)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            workers = client.workers()
            if len(workers) == 2:
                break
            time.sleep(0.05)
        assert sorted(w["worker"] for w in workers) == ["tel-w0", "tel-w1"]
        for worker in workers:
            assert worker["last_heartbeat_age_seconds"] < 5.0
            assert worker["executed"] == 0
            assert worker["current"] is None

    def test_healthz_reports_uptime_states_and_fleet(self, loopback):
        loopback.spawn_workers(1)
        jobs = _jobs(3)
        ServiceRunner(loopback.url).run(jobs)
        health = ServiceClient(loopback.url).health()
        assert health["ok"] is True
        assert health["uptime_seconds"] >= 0
        assert health["pending_ready"] == 0
        assert health["jobs"] == {"done": 3}
        assert health["workers"] >= 1

    def test_sweep_status_timestamps(self, loopback):
        loopback.spawn_workers(1)
        jobs = _jobs(2)
        client = ServiceClient(loopback.url)
        submitted_at = time.time()
        runner = ServiceRunner(loopback.url)
        runner.run(jobs)
        sweep_id = client.submit(jobs)["sweep_id"]
        status = client.status(sweep_id)
        stamps = status["timestamps"]
        assert stamps["submitted"] >= submitted_at - 1.0
        # Cold execution happened under the first sweep; this warm one
        # shares the jobs, so first_lease/settled predate its submit.
        assert stamps["first_lease"] is not None
        assert stamps["settled"] is not None
        assert stamps["first_lease"] <= stamps["settled"]


class TestReproTop:
    def test_once_json_on_warm_sweep(self, loopback, capsys, tmp_path):
        loopback.spawn_workers(2)
        jobs = _jobs(6)
        ServiceRunner(loopback.url).run(jobs)  # cold
        client = ServiceClient(loopback.url)
        sweep_id = client.submit(jobs)["sweep_id"]  # warm: all deduped done
        events_out = tmp_path / "sweep-events.jsonl"
        _await_series(client, "repro_worker_jobs_done_total", 6)

        rc = top_main(
            [
                "--broker", loopback.url,
                "--sweep", sweep_id,
                "--once", "--json",
                "--events-out", str(events_out),
            ]
        )
        assert rc == 0
        frame = json.loads(capsys.readouterr().out)
        sweep = frame["sweep"]
        assert sweep["progress"] == 1.0
        assert sweep["done"] and sweep["ok"]
        assert sweep["cache_hit_ratio"] >= 0.9
        assert len(frame["workers"]) >= 1
        assert frame["series"]["repro_service_leases_total"] >= 6
        assert frame["health"]["ok"] is True

        # The events dump feeds the Perfetto distributed timeline.
        from repro.obs.perfetto import chrome_trace, sweep_span_events, validate_chrome_trace
        from repro.runner.events import read_events

        records = read_events(str(events_out))
        assert records, "events dump is empty"
        payload = chrome_trace(sweep_span_events(records))
        assert validate_chrome_trace(payload) == []

    def test_dashboard_render_smoke(self, loopback):
        loopback.spawn_workers(1)
        jobs = _jobs(2)
        ServiceRunner(loopback.url).run(jobs)
        client = ServiceClient(loopback.url)
        sweep_id = client.submit(jobs)["sweep_id"]
        frame = collect(client, sweep_id=sweep_id)
        text = render(frame, {})
        assert "repro-top" in text
        assert "sweep" in text
        assert "queue:" in text


class TestHeartbeatFailure:
    def test_consecutive_failures_stop_the_worker(self, tmp_path):
        dead = ServiceClient(
            "http://127.0.0.1:9", max_retries=0, retry=FAST_RETRY
        )
        worker = Worker(
            dead,
            SQLiteCache(tmp_path / "cache.db"),
            name="doomed",
            poll=0.01,
            retry=FAST_RETRY,
            max_heartbeat_failures=3,
            status_interval=0.01,
        )
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "worker did not stop"
        assert worker.heartbeat_exhausted
        errors = worker.metrics.snapshot().counter_family(
            "service.heartbeat_errors"
        )
        assert sum(errors.values()) >= 3

    def test_worker_main_exits_nonzero_on_exhaustion(self, monkeypatch):
        def fake_run(self):
            self.heartbeat_exhausted = True
            return self.executed

        monkeypatch.setattr(Worker, "run", fake_run)
        rc = worker_main(["--broker", "http://127.0.0.1:9"])
        assert rc == 1


class TestCorrelationPropagation:
    def test_client_context_reaches_broker_logs(self, loopback):
        stream = io.StringIO()
        loopback.broker.log = JsonLogger(
            "repro.broker", stream=stream, level=0
        )
        client = ServiceClient(loopback.url)
        with log_context(sweep_id="corr-test-123"):
            client.health()
        # The broker thread logs the request after sending the response,
        # so the line can land fractionally after health() returns.
        request_logs = []
        deadline = time.time() + 5.0
        while not request_logs and time.time() < deadline:
            records = [
                json.loads(line) for line in stream.getvalue().splitlines()
            ]
            request_logs = [
                r
                for r in records
                if r["msg"] == "request" and r.get("route") == "healthz"
            ]
            if not request_logs:
                time.sleep(0.02)
        assert request_logs, f"no request log captured: {records}"
        assert request_logs[-1]["sweep_id"] == "corr-test-123"


class TestDisabledTelemetryByteIdentity:
    def test_outputs_identical_with_metrics_disabled(self, tmp_path):
        jobs = _jobs(4)
        payloads = {}
        for mode in ("enabled", "disabled"):
            disabled = mode == "disabled"
            root = tmp_path / mode
            root.mkdir()
            service = Loopback(
                root,
                metrics=MetricsRegistry(enabled=False) if disabled else None,
            )
            try:
                worker_kw = {}
                if disabled:
                    worker_kw = {
                        "metrics": MetricsRegistry(enabled=False),
                        "status_interval": 0.0,
                    }
                service.spawn_workers(2, **worker_kw)
                ServiceRunner(service.url).run(jobs)
                client = ServiceClient(service.url)
                payloads[mode] = {
                    job.key(): client.fetch_result_bytes(job.key())
                    for job in jobs
                }
            finally:
                service.close()
        assert payloads["enabled"] == payloads["disabled"]
        assert all(p is not None for p in payloads["enabled"].values())


class TestFleetCycleAccounting:
    def test_simulate_job_cycles_reach_broker_metrics(self, loopback):
        """A simulate job run with ``collect_cycles=True`` must surface
        per-cause CPI-stack cycles on the broker's ``/metrics`` as
        ``repro_sim_cycles_total{cause=...,model=...,worker=...}`` and in
        the repro-top frame/dashboard."""
        from repro.machine.configs import PLAYDOH_4W
        from repro.runner.jobs import simulate_job
        from repro.service.top import cause_totals

        loopback.spawn_workers(1)
        job = simulate_job(
            "compress", PLAYDOH_4W, scale=0.25, collect_cycles=True
        )
        ServiceRunner(loopback.url).run([job])
        client = ServiceClient(loopback.url)
        samples = _await_series(client, "repro_sim_cycles_total", 1)

        per_cause = cause_totals(samples)
        assert per_cause.get("issue", 0) > 0
        # Three machine models contribute (nopred/proposed/baseline).
        models = {
            pair.split("=", 1)[1].strip('"')
            for key in samples
            if key.startswith("repro_sim_cycles_total{")
            for pair in key[key.index("{") + 1 : -1].split(",")
            if pair.startswith("model=")
        }
        assert models == {"nopred", "proposed", "baseline"}

        frame = collect(client)
        assert frame["cycles"] == per_cause
        assert frame["series"]["repro_sim_cycles_total"] > 0
        assert "cycles:" in render(frame, {})

    def test_jobs_without_cycles_emit_no_cycle_series(self, loopback):
        loopback.spawn_workers(1)
        ServiceRunner(loopback.url).run(_jobs(2))
        client = ServiceClient(loopback.url)
        _await_series(client, "repro_worker_jobs_done_total", 2)
        samples = parse_exposition(client.metrics_text())
        assert series_total(samples, "repro_sim_cycles_total") == 0
        frame = collect(client)
        assert frame["cycles"] == {}
        assert "cycles:" not in render(frame, {})
