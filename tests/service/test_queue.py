"""SweepQueue: dedup, dependency-ordered leasing, leases, retries, events.

The queue never unpickles job blobs, so these tests drive it with
hand-rolled packed entries — real content hashes are irrelevant here,
only that keys are distinct strings.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, Sequence

import pytest

from repro.service.queue import SweepQueue


def _key(seed: str) -> str:
    return hashlib.sha256(seed.encode()).hexdigest()


def _packed(seed: str, deps: Sequence[str] = ()) -> Dict[str, object]:
    return {
        "key": _key(seed),
        "job_id": f"job:{seed}",
        "stage": "test",
        "deps": [_key(dep) for dep in deps],
        "blob": "ZmFrZQ==",  # the queue schedules from the fields alone
    }


@pytest.fixture()
def queue(tmp_path):
    q = SweepQueue(tmp_path / "queue.db", lease_timeout=60.0, max_attempts=3)
    yield q
    q.close()


class TestSubmit:
    def test_new_jobs_register_once(self, queue):
        summary = queue.submit([_packed("a"), _packed("b")])
        assert summary["total"] == 2
        assert summary["new"] == 2
        assert summary["deduped"] == 0
        assert queue.counts()["jobs"] == {"pending": 2}

    def test_concurrent_sweeps_dedup_by_key(self, queue):
        first = queue.submit([_packed("a"), _packed("b")])
        second = queue.submit([_packed("b"), _packed("c")])
        assert second["new"] == 1
        assert second["deduped"] == 1
        # b exists once; both sweeps reference it.
        assert queue.counts()["jobs"] == {"pending": 3}
        assert first["sweep_id"] != second["sweep_id"]

    def test_done_jobs_report_as_cache_hits_to_new_sweeps(self, queue):
        queue.submit([_packed("a")])
        leased = queue.lease("w1")
        queue.complete("w1", leased["key"], ok=True)
        summary = queue.submit([_packed("a")], result_exists=lambda key: True)
        assert summary["done"] == 1
        events = queue.events_since(summary["sweep_id"])
        kinds = [e["event"] for e in events]
        assert "cache_hit" in kinds
        finishes = [e for e in events if e["event"] == "job_finish"]
        assert finishes and finishes[0]["cached"] is True
        status = queue.sweep_status(summary["sweep_id"])
        assert status["done"] and status["ok"]

    def test_done_job_with_evicted_result_is_recomputed(self, queue):
        queue.submit([_packed("a")])
        leased = queue.lease("w1")
        queue.complete("w1", leased["key"], ok=True)
        summary = queue.submit([_packed("a")], result_exists=lambda key: False)
        assert summary["done"] == 0
        assert queue.counts()["jobs"] == {"pending": 1}

    def test_failed_job_gets_a_fresh_budget_on_resubmit(self, queue):
        queue.submit([_packed("a")])
        for _ in range(queue.max_attempts):
            leased = queue.lease("w1")
            queue.complete("w1", leased["key"], ok=False, error="boom")
        assert queue.counts()["jobs"] == {"failed": 1}
        queue.submit([_packed("a")])
        assert queue.counts()["jobs"] == {"pending": 1}
        # And it can now be leased again at attempt 1.
        assert queue.lease("w1")["attempt"] == 1


class TestLeasing:
    def test_dependency_order(self, queue):
        queue.submit(
            [_packed("sim", deps=["comp"]), _packed("comp", deps=["prof"]),
             _packed("prof")]
        )
        assert queue.pending_ready() == 1
        first = queue.lease("w1")
        assert first["job_id"] == "job:prof"
        # Nothing else is ready while prof runs.
        assert queue.lease("w2") is None
        queue.complete("w1", first["key"], ok=True)
        second = queue.lease("w1")
        assert second["job_id"] == "job:comp"
        queue.complete("w1", second["key"], ok=True)
        assert queue.lease("w1")["job_id"] == "job:sim"

    def test_absent_dependency_rows_count_as_satisfied(self, queue):
        # A dep key the queue has never seen: the worker's runner will
        # resolve it from the shared cache or recompute it locally.
        queue.submit([_packed("sim", deps=["not-submitted"])])
        assert queue.lease("w1") is not None

    def test_empty_queue_leases_none(self, queue):
        assert queue.lease("w1") is None

    def test_lease_expiry_requeues(self, tmp_path):
        queue = SweepQueue(tmp_path / "q.db", lease_timeout=0.05)
        summary = queue.submit([_packed("a")])
        assert queue.lease("dead-worker") is not None
        assert queue.lease("other") is None
        time.sleep(0.1)
        released = queue.lease("other")
        assert released is not None
        assert released["attempt"] == 2
        kinds = [e["event"] for e in queue.events_since(summary["sweep_id"])]
        assert "job_requeued" in kinds
        queue.close()

    def test_heartbeat_extends_the_lease(self, tmp_path):
        queue = SweepQueue(tmp_path / "q.db", lease_timeout=0.2)
        queue.submit([_packed("a")])
        leased = queue.lease("w1")
        for _ in range(3):
            time.sleep(0.1)
            assert queue.heartbeat("w1", [leased["key"]]) == 1
        # 0.3s elapsed > lease_timeout, but the heartbeats kept it alive.
        assert queue.lease("other") is None
        queue.close()

    def test_heartbeat_ignores_leases_held_by_others(self, queue):
        queue.submit([_packed("a")])
        leased = queue.lease("w1")
        assert queue.heartbeat("intruder", [leased["key"]]) == 0


class TestCompletion:
    def test_success_emits_miss_and_finish(self, queue):
        summary = queue.submit([_packed("a")])
        leased = queue.lease("w1")
        outcome = queue.complete(
            "w1", leased["key"], ok=True, cached=False, wall_time=1.5
        )
        assert outcome["state"] == "done"
        events = queue.events_since(summary["sweep_id"])
        kinds = [e["event"] for e in events]
        assert kinds.count("cache_miss") == 1
        finish = [e for e in events if e["event"] == "job_finish"][0]
        assert finish["wall_time"] == 1.5 and finish["worker"] == "w1"

    def test_worker_cache_hit_emits_cache_hit(self, queue):
        summary = queue.submit([_packed("a")])
        leased = queue.lease("w1")
        queue.complete("w1", leased["key"], ok=True, cached=True)
        events = queue.events_since(summary["sweep_id"])
        hits = [e for e in events if e["event"] == "cache_hit"]
        assert hits and hits[0]["source"] == "worker"

    def test_failures_requeue_until_budget_exhausted(self, queue):
        summary = queue.submit([_packed("a")])
        for attempt in range(1, queue.max_attempts + 1):
            leased = queue.lease("w1")
            assert leased["attempt"] == attempt
            outcome = queue.complete("w1", leased["key"], ok=False, error="boom")
        assert outcome["state"] == "failed"
        assert queue.lease("w1") is None
        events = queue.events_since(summary["sweep_id"])
        kinds = [e["event"] for e in events]
        assert kinds.count("job_retry") == queue.max_attempts - 1
        assert kinds.count("job_failed") == 1
        status = queue.sweep_status(summary["sweep_id"])
        assert status["done"] and not status["ok"]
        assert status["failed"][0]["error"] == "boom"

    def test_unknown_key_is_reported_not_crashed(self, queue):
        assert queue.complete("w1", _key("ghost"), ok=True) == {
            "state": "unknown"
        }

    def test_complete_without_holding_the_lease_is_stale(self, queue):
        # A report for a job nobody leased must not settle it.
        queue.submit([_packed("a")])
        assert queue.complete("w1", _key("a"), ok=True)["state"] == "stale"
        assert queue.counts()["jobs"] == {"pending": 1}

    def test_stale_worker_cannot_flip_a_settled_job(self, tmp_path):
        # w1's lease expires mid-job; w2 re-leases and succeeds; w1's
        # late failure report must bounce off, not corrupt the outcome.
        queue = SweepQueue(tmp_path / "q.db", lease_timeout=0.05)
        summary = queue.submit([_packed("a")])
        first = queue.lease("w1")
        time.sleep(0.1)
        second = queue.lease("w2")
        assert second is not None and second["key"] == first["key"]
        assert queue.complete("w2", second["key"], ok=True)["state"] == "done"
        late = queue.complete("w1", first["key"], ok=False, error="late crash")
        assert late["state"] == "stale"
        assert queue.counts()["jobs"] == {"done": 1}
        status = queue.sweep_status(summary["sweep_id"])
        assert status["done"] and status["ok"]
        queue.close()

    def test_shared_job_notifies_every_sweep(self, queue):
        first = queue.submit([_packed("a")])
        second = queue.submit([_packed("a")])
        leased = queue.lease("w1")
        queue.complete("w1", leased["key"], ok=True)
        for sweep_id in (first["sweep_id"], second["sweep_id"]):
            kinds = [e["event"] for e in queue.events_since(sweep_id)]
            assert "job_finish" in kinds
            assert queue.sweep_status(sweep_id)["ok"]


class TestFailureCascade:
    def _chain(self):
        return [
            _packed("sim", deps=["comp"]),
            _packed("comp", deps=["prof"]),
            _packed("prof"),
        ]

    def test_mid_graph_failure_settles_the_whole_sweep(self, queue):
        # The root of a build→…→simulate chain exhausts its budget; its
        # dependents must fail transitively, not sit pending forever
        # (which would hang every client polling sweep_status).
        summary = queue.submit(self._chain())
        for _ in range(queue.max_attempts):
            leased = queue.lease("w1")
            assert leased["job_id"] == "job:prof"
            queue.complete("w1", leased["key"], ok=False, error="boom")
        assert queue.counts()["jobs"] == {"failed": 3}
        assert queue.lease("w1") is None
        status = queue.sweep_status(summary["sweep_id"])
        assert status["done"] and not status["ok"]
        errors = {f["job"]: f["error"] for f in status["failed"]}
        assert errors["job:prof"] == "boom"
        assert errors["job:comp"].startswith("dependency failed: job:prof")
        assert errors["job:sim"].startswith("dependency failed: job:comp")
        events = queue.events_since(summary["sweep_id"])
        cascaded = [e for e in events if e.get("reason") == "dep_failed"]
        assert {e["job"] for e in cascaded} == {"job:comp", "job:sim"}

    def test_resubmission_resets_cascade_failed_dependents(self, queue):
        queue.submit(self._chain())
        for _ in range(queue.max_attempts):
            leased = queue.lease("w1")
            queue.complete("w1", leased["key"], ok=False, error="boom")
        assert queue.counts()["jobs"] == {"failed": 3}
        queue.submit(self._chain())
        assert queue.counts()["jobs"] == {"pending": 3}
        assert queue.lease("w1")["job_id"] == "job:prof"

    def test_lease_expiry_with_exhausted_budget_fails_job(self, tmp_path):
        # A poison job that keeps killing its workers must not be
        # re-leased forever once the attempt budget is spent.
        queue = SweepQueue(
            tmp_path / "q.db", lease_timeout=0.05, max_attempts=1
        )
        summary = queue.submit([_packed("a"), _packed("b", deps=["a"])])
        assert queue.lease("doomed")["job_id"] == "job:a"
        time.sleep(0.1)
        assert queue.lease("other") is None
        status = queue.sweep_status(summary["sweep_id"])
        assert status["done"] and not status["ok"]
        errors = {f["job"]: f["error"] for f in status["failed"]}
        assert "budget exhausted" in errors["job:a"]
        assert errors["job:b"].startswith("dependency failed: job:a")
        queue.close()

    def test_requeue_of_leased_dependent_sees_failed_dep(self, queue):
        # b is leased (its dep a was done) when a is reset and fails:
        # the cascade missed b, so b's own lease expiry must notice the
        # failed dependency instead of requeueing b into a permanent
        # pending state.
        queue.submit([_packed("a"), _packed("b", deps=["a"])])
        first = queue.lease("w1")
        queue.complete("w1", first["key"], ok=True)
        second = queue.lease("w2")
        assert second["job_id"] == "job:b"
        # The shared cache lost a's result; a resubmission recomputes it.
        queue.submit(
            [_packed("a"), _packed("b", deps=["a"])],
            result_exists=lambda key: False,
        )
        for _ in range(queue.max_attempts):
            leased = queue.lease("w1")
            assert leased["job_id"] == "job:a"
            queue.complete("w1", leased["key"], ok=False, error="boom")
        # b was leased through all of that, so it is not failed yet...
        assert queue.counts()["jobs"] == {"failed": 1, "leased": 1}
        # ...but when its (dead) worker's lease expires, it must fail.
        queue._conn().execute(
            "UPDATE jobs SET lease_expires = 0 WHERE key = ?",
            (second["key"],),
        )
        queue.requeue_expired()
        assert queue.counts()["jobs"] == {"failed": 2}


class TestEvents:
    def test_events_since_paginates(self, queue):
        summary = queue.submit([_packed("a")])
        sweep_id = summary["sweep_id"]
        first_batch = queue.events_since(sweep_id)
        assert first_batch
        cursor = first_batch[-1]["seq"]
        assert queue.events_since(sweep_id, since=cursor) == []
        leased = queue.lease("w1")
        queue.complete("w1", leased["key"], ok=True)
        fresh = queue.events_since(sweep_id, since=cursor)
        assert [e["event"] for e in fresh][0] == "job_start"
        assert all(e["seq"] > cursor for e in fresh)

    def test_unknown_sweep_status_is_none(self, queue):
        assert queue.sweep_status("feedface") is None
