"""Wire format: pack/unpack roundtrips and the key-skew tripwire."""

from __future__ import annotations

import base64
import pickle

import pytest

from repro.machine.configs import PLAYDOH_4W
from repro.runner.jobs import CODE_VERSION, Job, JobSpec, simulate_job
from repro.service.wire import (
    WIRE_VERSION,
    WireError,
    check_wire_version,
    pack_graph,
    pack_job,
    unpack_graph,
    unpack_job,
)


def _job(**params) -> Job:
    return Job(JobSpec("wire-test", "x", params=tuple(sorted(params.items()))))


class TestPackJob:
    def test_roundtrip_preserves_identity(self):
        job = simulate_job("li", PLAYDOH_4W, scale=0.5)
        packed = pack_job(job)
        assert packed["key"] == job.key()
        assert packed["job_id"] == job.job_id
        assert packed["stage"] == "simulate"
        assert packed["deps"] == [dep.key() for dep in job.deps]
        restored = unpack_job(packed)
        assert restored == job
        assert restored.key() == job.key()

    def test_blob_is_json_safe(self):
        import json

        packed = pack_job(_job(n=1))
        json.dumps(packed)  # must not raise

    def test_key_mismatch_raises_wire_error(self):
        packed = pack_job(_job(n=1))
        packed["key"] = pack_job(_job(n=2))["key"]
        with pytest.raises(WireError, match="key mismatch"):
            unpack_job(packed)

    def test_garbage_blob_raises_wire_error(self):
        packed = pack_job(_job(n=1))
        packed["blob"] = base64.b64encode(b"not a pickle").decode("ascii")
        with pytest.raises(WireError, match="cannot decode"):
            unpack_job(packed)

    def test_non_job_pickle_raises_wire_error(self):
        packed = pack_job(_job(n=1))
        packed["blob"] = base64.b64encode(pickle.dumps({"not": "a job"})).decode(
            "ascii"
        )
        with pytest.raises(WireError, match="not Job"):
            unpack_job(packed)


class TestMachineTable:
    """Wire v2: machines travel as canonical spec JSON, never as pickle."""

    def test_blob_carries_no_pickled_machine(self):
        from repro.service.wire import _MachineRef

        packed = pack_job(simulate_job("li", PLAYDOH_4W, scale=0.5))
        blob = base64.b64decode(packed["blob"])
        assert b"MachineDescription" not in blob
        stripped = pickle.loads(blob)
        assert isinstance(stripped.spec.machine, _MachineRef)
        for dep in stripped.deps:
            assert dep.machine is None or isinstance(dep.machine, _MachineRef)

    def test_machines_table_is_canonical_spec_json(self):
        import json

        from repro.machine.spec import MachineSpec

        packed = pack_job(simulate_job("li", PLAYDOH_4W, scale=0.5))
        spec = MachineSpec.from_description(PLAYDOH_4W)
        assert packed["machines"] == {spec.fingerprint(): spec.canonical()}
        json.dumps(packed["machines"])  # JSON-safe, no pickle inside

    def test_roundtrip_rebuilds_byte_identical_machine(self):
        job = simulate_job("li", PLAYDOH_4W, scale=0.5)
        restored = unpack_job(pack_job(job))
        assert pickle.dumps(restored.spec.machine) == pickle.dumps(PLAYDOH_4W)

    def test_tampered_machine_spec_raises(self):
        packed = pack_job(simulate_job("li", PLAYDOH_4W, scale=0.5))
        fingerprint = next(iter(packed["machines"]))
        packed["machines"][fingerprint]["issue_width"] = 64
        with pytest.raises(WireError, match="tampered or corrupted"):
            unpack_job(packed)

    def test_invalid_machine_spec_raises(self):
        packed = pack_job(simulate_job("li", PLAYDOH_4W, scale=0.5))
        fingerprint = next(iter(packed["machines"]))
        packed["machines"][fingerprint]["issue_width"] = 0
        with pytest.raises(WireError, match="invalid machine spec"):
            unpack_job(packed)

    def test_missing_machine_table_raises(self):
        packed = pack_job(simulate_job("li", PLAYDOH_4W, scale=0.5))
        packed["machines"] = {}
        with pytest.raises(WireError, match="missing from the payload"):
            unpack_job(packed)

    def test_jobs_without_machines_have_empty_tables(self):
        assert pack_job(_job(n=1))["machines"] == {}


class TestPackGraph:
    def test_roundtrip(self):
        jobs = [_job(n=1), _job(n=2), _job(n=3)]
        payload = pack_graph(jobs)
        assert payload["wire_version"] == WIRE_VERSION
        assert payload["code_version"] == CODE_VERSION
        assert unpack_graph(payload) == jobs

    def test_wire_version_mismatch_raises(self):
        payload = pack_graph([_job(n=1)])
        payload["wire_version"] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="wire version"):
            check_wire_version(payload)
        with pytest.raises(WireError, match="wire version"):
            unpack_graph(payload)

    def test_missing_wire_version_raises(self):
        with pytest.raises(WireError, match="wire version"):
            check_wire_version({"jobs": []})
