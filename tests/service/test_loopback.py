"""End-to-end loopback: broker + in-process workers + client adapter.

The acceptance path of the sweep service: a real pipeline job graph
(build → trace → profile → compile → simulate) submitted through
:class:`ServiceRunner` to an in-process :class:`Broker`, executed by two
:class:`Worker` threads sharing one SQLite cache, must produce results
byte-identical to a local :class:`Runner` — and a warm resubmission must
complete from cache, observable in the mirrored event stream.

Fault paths ride on cheap synthetic stages: a worker that dies mid-job
(simulated by a lease that is taken and never completed), and a job that
fails until the attempt budget runs out.
"""

from __future__ import annotations

import pickle
import threading
import time
from typing import List

import pytest

from repro.machine.configs import PLAYDOH_4W
from repro.runner import DiskCache, EventLog, Runner
from repro.runner.jobs import Job, JobSpec, register_stage, simulate_job
from repro.service.backends import SQLiteCache
from repro.service.broker import Broker
from repro.service.client import ServiceClient, ServiceError, ServiceRunner
from repro.service.queue import SweepQueue
from repro.service.worker import Worker


def _echo(spec: JobSpec, deps):
    return {"benchmark": spec.benchmark, "token": spec.param("token")}


def _boom(spec: JobSpec, deps):
    raise RuntimeError("injected service failure")


register_stage("svc-echo", _echo)
register_stage("svc-boom", _boom)


def _synthetic(stage: str, **params) -> Job:
    return Job(JobSpec(stage, "x", params=tuple(sorted(params.items()))))


class Loopback:
    """One broker plus a stoppable pool of in-process worker threads."""

    def __init__(self, tmp_path, lease_timeout: float = 30.0):
        self.cache = SQLiteCache(tmp_path / "cache.db")
        self.queue = SweepQueue(
            tmp_path / "queue.db", lease_timeout=lease_timeout
        )
        self.broker = Broker(self.queue, self.cache).start()
        self.url = self.broker.url
        self.workers: List[Worker] = []
        self.threads: List[threading.Thread] = []

    def spawn_workers(self, count: int = 2, **kw) -> List[Worker]:
        spawned = []
        for n in range(len(self.workers), len(self.workers) + count):
            worker = Worker(
                ServiceClient(self.url),
                self.cache,
                name=f"loopback-w{n}",
                poll=0.05,
                **kw,
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            self.workers.append(worker)
            self.threads.append(thread)
            spawned.append(worker)
        return spawned

    def close(self) -> None:
        for worker in self.workers:
            worker.stop()
        for thread in self.threads:
            thread.join(timeout=10.0)
        self.broker.stop()
        self.cache.close()


@pytest.fixture()
def loopback(tmp_path):
    service = Loopback(tmp_path)
    yield service
    service.close()


class TestLoopbackSweep:
    def test_byte_identical_to_local_then_warm_from_cache(
        self, tmp_path, loopback
    ):
        job = simulate_job("li", PLAYDOH_4W, scale=0.15)

        # Reference: the same graph executed locally, cold disk cache.
        with Runner(
            jobs=1, cache=DiskCache(root=tmp_path / "local"), events=EventLog()
        ) as local_runner:
            local = local_runner.run([job])

        # Cold service run: two workers share the broker's SQLite cache.
        loopback.spawn_workers(2)
        cold_events = EventLog()
        cold = ServiceRunner(loopback.url, events=cold_events, poll=0.05).run(
            [job]
        )

        assert set(cold) == set(local)
        assert job.key() in cold
        for key in local:
            assert pickle.dumps(cold[key]) == pickle.dumps(local[key]), (
                f"service result for {key[:12]}… differs from local"
            )
        # The cold run genuinely executed on the workers, and the
        # mirrored event stream says so.
        assert cold_events.executed == len(local)
        assert cold_events.failures == 0

        # Warm resubmission: every job settles from the queue/cache —
        # the >=90% cache-completion acceptance bar, measured the same
        # way the runner measures it, via cache_hit events.
        warm_events = EventLog()
        warm = ServiceRunner(loopback.url, events=warm_events, poll=0.05).run(
            [job]
        )
        for key in local:
            assert pickle.dumps(warm[key]) == pickle.dumps(local[key])
        assert warm_events.executed == 0
        assert warm_events.cache_hits >= 0.9 * len(local)
        finishes = warm_events.of_type("job_finish")
        assert len(finishes) == len(local)
        assert all(event["cached"] for event in finishes)

    def test_run_job_fast_path_skips_sweep_submission(self, loopback):
        job = _synthetic("svc-echo", token="fast")
        loopback.spawn_workers(1)
        first = ServiceRunner(loopback.url, poll=0.05).run_job(job)
        assert first == {"benchmark": "x", "token": "fast"}
        sweeps_before = loopback.queue.counts()["sweeps"]
        again = ServiceRunner(loopback.url, poll=0.05).run_job(job)
        assert again == first
        assert loopback.queue.counts()["sweeps"] == sweeps_before

    def test_worker_side_cache_hit_is_reported_as_cached(self, loopback):
        job = _synthetic("svc-echo", token="prewarmed")
        expected = {"benchmark": "x", "token": "prewarmed"}
        # The result is already in the shared store (e.g. from another
        # broker sharing the backend) but the queue has never seen the
        # job: the worker leases it and resolves it as a cache hit.
        loopback.cache.put(job.key(), expected, manifest={"stage": "svc-echo"})
        client = ServiceClient(loopback.url)
        summary = client.submit([job])
        loopback.spawn_workers(1)
        events = EventLog()
        result = ServiceRunner(loopback.url, events=events, poll=0.05).run([job])
        assert result[job.key()] == expected
        hits = [
            e
            for e in client.events(summary["sweep_id"])
            if e["event"] == "cache_hit"
        ]
        assert hits and hits[0]["source"] == "worker"
        assert events.executed == 0


class TestBrokerFaults:
    def test_handler_fault_returns_500_and_keeps_serving(
        self, loopback, monkeypatch
    ):
        client = ServiceClient(loopback.url)

        def explode():
            raise RuntimeError("backend fault")

        monkeypatch.setattr(loopback.broker.cache, "stats", explode)
        with pytest.raises(ServiceError, match="HTTP 500"):
            client.cache_stats()
        # The fault was reported on-protocol; the broker still serves.
        assert client.health()["ok"] is True


class TestFaultPaths:
    def test_worker_death_mid_sweep_requeues_to_a_live_worker(self, tmp_path):
        service = Loopback(tmp_path, lease_timeout=0.4)
        try:
            job = _synthetic("svc-echo", token="survivor")
            client = ServiceClient(service.url)
            summary = client.submit([job])
            # A worker leases the job and dies without completing or
            # heartbeating — exactly what a killed process looks like
            # from the broker's side.
            zombie_lease = client.lease("zombie")
            assert zombie_lease is not None
            assert zombie_lease["key"] == job.key()

            service.spawn_workers(1)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                status = client.status(summary["sweep_id"])
                if status["done"]:
                    break
                time.sleep(0.05)
            assert status["done"] and status["ok"], status

            events = client.events(summary["sweep_id"])
            kinds = [e["event"] for e in events]
            assert "job_requeued" in kinds
            starts = [e for e in events if e["event"] == "job_start"]
            assert starts[-1]["attempt"] == 2
            assert starts[-1]["worker"] != "zombie"
            payload = client.fetch_result_bytes(job.key())
            assert pickle.loads(payload) == {
                "benchmark": "x",
                "token": "survivor",
            }
        finally:
            service.close()

    def test_failing_job_exhausts_budget_and_raises(self, loopback):
        job = _synthetic("svc-boom", token="doomed")
        loopback.spawn_workers(1)
        events = EventLog()
        runner = ServiceRunner(
            loopback.url, events=events, poll=0.05, timeout=60.0
        )
        with pytest.raises(ServiceError, match="failed job"):
            runner.run([job])
        assert events.failures == 1
        # Every queue-level attempt was a real execution attempt.
        assert (
            len(events.of_type("job_start")) == loopback.queue.max_attempts
        )
        status = loopback.queue.counts()
        assert status["jobs"].get("failed") == 1

    def test_mid_graph_failure_settles_instead_of_hanging(self, loopback):
        # The common shape: a dependency deep in a build→…→simulate
        # chain fails.  The dependent must be failed by cascade so the
        # sweep settles and the client raises — with the default
        # timeout=None this used to poll forever.
        boom = _synthetic("svc-boom", token="root")
        dependent = Job(
            JobSpec("svc-echo", "x", params=(("token", "downstream"),)),
            deps=(boom.spec,),
        )
        loopback.spawn_workers(1)
        events = EventLog()
        runner = ServiceRunner(
            loopback.url, events=events, poll=0.05, timeout=60.0
        )
        with pytest.raises(ServiceError, match="failed job"):
            runner.run([dependent])
        status = loopback.queue.counts()
        assert status["jobs"].get("failed") == 2
        cascaded = [
            e
            for e in events.of_type("job_failed")
            if e.get("reason") == "dep_failed"
        ]
        assert len(cascaded) == 1
        # The dependent itself never reached a worker.
        started = {e["key"] for e in events.of_type("job_start")}
        assert dependent.key() not in started

    def test_dropped_result_store_fails_instead_of_fake_done(self, tmp_path):
        # A worker whose result PUT is silently swallowed (HTTPCache on
        # a flaky network) must not report ok: the queue would record
        # 'done' with nothing behind it and the client's fetch would
        # blow up after a "successful" sweep.
        class DroppingCache(SQLiteCache):
            def store_bytes(self, key, payload, manifest):
                pass

        service = Loopback(tmp_path)
        try:
            worker = Worker(
                ServiceClient(service.url),
                DroppingCache(tmp_path / "dropping.db"),
                name="droppy",
                poll=0.05,
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            client = ServiceClient(service.url)
            job = _synthetic("svc-echo", token="vanishing")
            summary = client.submit([job])
            deadline = time.monotonic() + 30.0
            status = client.status(summary["sweep_id"])
            while time.monotonic() < deadline and not status["done"]:
                time.sleep(0.05)
                status = client.status(summary["sweep_id"])
            assert status["done"] and not status["ok"], status
            assert "missing from shared cache" in status["failed"][0]["error"]
            assert client.fetch_result_bytes(job.key()) is None
            worker.stop()
            thread.join(timeout=10.0)
        finally:
            service.close()
