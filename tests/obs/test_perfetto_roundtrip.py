"""Perfetto export round-trip: the JSON on disk must agree with the
metrics snapshot of the very simulation it renders.

A traced block run is exported via :mod:`repro.obs.perfetto`, re-parsed
from disk, and the span population is checked against the
:class:`~repro.obs.metrics.MetricsRegistry` that rode along: every
``cce.flush`` increment is one flush span, every ``cce.reexec``
increment one execute span, and both engine process tracks exist.
"""

import json

import pytest

from repro.core.machine_sim import simulate_block
from repro.evaluation.paper_example import run_example
from repro.obs.metrics import MetricsRegistry
from repro.obs.perfetto import block_run_events, chrome_trace, write_trace


@pytest.fixture(scope="module")
def example():
    return run_example()


def _export_and_reload(tmp_path, spec_schedule, outcomes):
    registry = MetricsRegistry()
    run = simulate_block(
        spec_schedule, outcomes, collect_trace=True, metrics=registry
    )
    events = block_run_events(spec_schedule, run)
    path = tmp_path / "roundtrip.trace.json"
    write_trace(str(path), chrome_trace(events))
    return json.loads(path.read_text()), registry.snapshot(), run


@pytest.mark.parametrize(
    "pattern", [(True, True), (True, False), (False, True), (False, False)]
)
def test_cce_span_counts_match_metrics_snapshot(tmp_path, example, pattern):
    l4, l7 = example.spec_schedule.spec.ldpred_ids
    payload, snapshot, run = _export_and_reload(
        tmp_path, example.spec_schedule, {l4: pattern[0], l7: pattern[1]}
    )
    spans = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
    flush_spans = [e for e in spans if e.get("cat") == "flush"]
    execute_spans = [e for e in spans if e.get("cat") == "execute"]

    assert len(flush_spans) == snapshot.counter("cce.flush") == run.flushed
    assert len(execute_spans) == snapshot.counter("cce.reexec") == run.executed
    # Every speculated op ends up exactly once on the CCE pipeline:
    # flushed when its prediction held, re-executed when it did not.
    assert len(flush_spans) + len(execute_spans) == len(
        example.spec_schedule.spec.speculated_ops
    )


def test_both_engine_tracks_present_after_reload(tmp_path, example):
    l4, l7 = example.spec_schedule.spec.ldpred_ids
    payload, snapshot, _run = _export_and_reload(
        tmp_path, example.spec_schedule, {l4: True, l7: False}
    )
    process_names = {
        e["args"]["name"]
        for e in payload["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert any("VLIW Engine" in name for name in process_names)
    assert any("Compensation Code Engine" in name for name in process_names)

    # CCE spans live on the CCE process track, VLIW op spans on the other.
    cce_pids = {
        e["pid"]
        for e in payload["traceEvents"]
        if e.get("cat") in ("flush", "execute")
    }
    vliw_pids = {
        e["pid"]
        for e in payload["traceEvents"]
        if e.get("ph") == "X" and e["name"].startswith("op")
        and e.get("cat") not in ("flush", "execute")
    }
    assert cce_pids and vliw_pids and cce_pids.isdisjoint(vliw_pids)
