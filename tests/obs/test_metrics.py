"""Tests of the metrics registry, snapshots and merge semantics."""

import pytest

from repro.obs.metrics import (
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_METRICS,
    metric_key,
)


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("cce.flush") == "cce.flush"

    def test_labelled(self):
        assert metric_key("ovb.state_transitions", "PN") == "ovb.state_transitions{PN}"


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("a", label="x")
        assert reg.counter("a") == 5
        assert reg.counter("a", label="x") == 1

    def test_gauge_keeps_max(self):
        reg = MetricsRegistry()
        reg.set_gauge("ovb.size", 3)
        reg.set_gauge("ovb.size", 7)
        reg.set_gauge("ovb.size", 2)
        assert reg.snapshot().gauge("ovb.size") == 7

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (1, 5, 3):
            reg.observe("occ", v)
        h = reg.snapshot().histogram("occ")
        assert (h.count, h.total, h.min, h.max) == (3, 9.0, 1, 5)
        assert h.mean == 3.0

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("a")
        reg.set_gauge("g", 1)
        reg.observe("h", 1)
        reg.merge_snapshot(MetricsSnapshot(counters={"a": 5}))
        snap = reg.snapshot()
        assert snap.counters == {} and snap.gauges == {} and snap.histograms == {}

    def test_null_metrics_is_disabled(self):
        assert NULL_METRICS.enabled is False

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.reset()
        assert reg.counter("a") == 0

    def test_merge_snapshot_adds_counters(self):
        reg = MetricsRegistry()
        reg.inc("a", 2)
        reg.merge_snapshot(MetricsSnapshot(counters={"a": 3, "b": 1}))
        assert reg.counter("a") == 5
        assert reg.counter("b") == 1


class TestSnapshot:
    def test_merged_counters_add_gauges_max_histograms_pool(self):
        a = MetricsSnapshot(
            counters={"c": 1},
            gauges={"g": 5.0},
            histograms={"h": HistogramSummary(2, 10.0, 3.0, 7.0)},
        )
        b = MetricsSnapshot(
            counters={"c": 2, "d": 4},
            gauges={"g": 3.0},
            histograms={"h": HistogramSummary(1, 1.0, 1.0, 1.0)},
        )
        m = a.merged(b)
        assert m.counter("c") == 3
        assert m.counter("d") == 4
        assert m.gauge("g") == 5.0
        h = m.histogram("h")
        assert (h.count, h.total, h.min, h.max) == (3, 11.0, 1.0, 7.0)

    def test_merged_does_not_mutate_inputs(self):
        a = MetricsSnapshot(counters={"c": 1})
        b = MetricsSnapshot(counters={"c": 2})
        a.merged(b)
        assert a.counter("c") == 1 and b.counter("c") == 2

    def test_scaled_multiplies_counters_keeps_gauges(self):
        s = MetricsSnapshot(
            counters={"c": 2},
            gauges={"g": 5.0},
            histograms={"h": HistogramSummary(2, 6.0, 1.0, 5.0)},
        )
        t = s.scaled(3)
        assert t.counter("c") == 6
        assert t.gauge("g") == 5.0
        h = t.histogram("h")
        assert (h.count, h.total, h.min, h.max) == (6, 18.0, 1.0, 5.0)

    def test_scaled_zero_empties_histograms(self):
        s = MetricsSnapshot(histograms={"h": HistogramSummary(2, 6.0, 1.0, 5.0)})
        assert s.scaled(0).histogram("h").count == 0

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            HistogramSummary(1, 1.0, 1.0, 1.0).scaled(-1)

    def test_counter_family(self):
        s = MetricsSnapshot(
            counters={
                "ovb.state_transitions{PN}": 2,
                "ovb.state_transitions{C}": 5,
                "ovb.state_transitions": 1,  # bare series excluded
                "other{PN}": 9,
            }
        )
        assert s.counter_family("ovb.state_transitions") == {"PN": 2, "C": 5}

    def test_dict_roundtrip(self):
        s = MetricsSnapshot(
            counters={"c": 2},
            gauges={"g": 5.0},
            histograms={"h": HistogramSummary(2, 6.0, 1.0, 5.0)},
        )
        back = MetricsSnapshot.from_dict(s.as_dict())
        assert back.counter("c") == 2
        assert back.gauge("g") == 5.0
        assert back.histogram("h").total == 6.0


class TestPercentiles:
    def test_exact_when_under_cap(self):
        h = HistogramSummary()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.p50 == pytest.approx(50.5)
        assert h.percentile(0.0) == 1.0
        assert h.percentile(100.0) == 100.0
        assert h.p95 == pytest.approx(95.05)
        assert h.p99 == pytest.approx(99.01)

    def test_empty_series_has_no_percentiles(self):
        h = HistogramSummary()
        assert h.p50 is None and h.p95 is None and h.p99 is None

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            HistogramSummary().percentile(101.0)

    def test_reservoir_bounded_and_deterministic(self):
        from repro.obs.metrics import RESERVOIR_CAP

        a, b = HistogramSummary(), HistogramSummary()
        for v in range(10 * RESERVOIR_CAP):
            a.observe(float(v))
            b.observe(float(v))
        assert len(a.samples) <= RESERVOIR_CAP
        assert a.samples == b.samples  # no randomness anywhere
        # Approximation stays tight for a uniform stream.
        assert a.p50 == pytest.approx(10 * RESERVOIR_CAP / 2, rel=0.05)
        assert a.p99 == pytest.approx(10 * RESERVOIR_CAP * 0.99, rel=0.05)

    def test_merged_pools_reservoirs(self):
        low, high = HistogramSummary(), HistogramSummary()
        for v in range(100):
            low.observe(float(v))          # 0..99
            high.observe(float(v + 100))   # 100..199
        merged = low.merged(high)
        assert merged.count == 200
        assert merged.p50 == pytest.approx(99.5, abs=2.0)
        assert merged.p99 == pytest.approx(197.0, abs=3.0)
        # Inputs untouched.
        assert len(low.samples) == 100 and len(high.samples) == 100

    def test_scaled_preserves_percentiles(self):
        h = HistogramSummary()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        scaled = h.scaled(5)
        assert scaled.count == 20
        assert scaled.p50 == h.p50
        assert scaled.p95 == h.p95

    def test_dict_roundtrip_preserves_percentiles(self):
        h = HistogramSummary()
        for v in range(50):
            h.observe(float(v))
        back = HistogramSummary.from_dict(h.as_dict())
        assert back.p50 == h.p50
        assert back.p95 == h.p95
        assert back.p99 == h.p99
        d = h.as_dict()
        assert d["p50"] == h.p50 and d["p95"] == h.p95 and d["p99"] == h.p99

    def test_legacy_dict_without_samples_still_loads(self):
        back = HistogramSummary.from_dict(
            {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0}
        )
        assert back.count == 3
        assert back.p50 is None

    def test_snapshot_roundtrip_carries_reservoir(self):
        reg = MetricsRegistry()
        for v in range(20):
            reg.observe("lat", float(v))
        snap = reg.snapshot()
        back = MetricsSnapshot.from_dict(snap.as_dict())
        assert back.histogram("lat").p95 == snap.histogram("lat").p95
