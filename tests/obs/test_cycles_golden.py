"""Golden-file test: the CPI-stack artifact is stable and tells the
paper's story.

``tests/obs/golden/cycles_scale04.json`` is the ``repro-cycles``
artifact for the full tier-1 suite at scale 0.4 (the smallest scale at
which every benchmark's value profile warms past the paper's 0.65
threshold) on both the 4-wide and 8-wide machines.  Regenerate after an
*intentional* accounting change with::

    PYTHONPATH=src python -c "
    from repro.evaluation.experiment import EvaluationSettings
    from repro.obs.cycles_cli import collect_stacks, artifact_payload, dump_artifact
    s = EvaluationSettings(scale=0.4).with_threshold(0.65)
    st = collect_stacks(s, ['base', 'wide'])
    dump_artifact(artifact_payload(s, ['base', 'wide'], st),
                  'tests/obs/golden/cycles_scale04.json')"

The story assertions encode Table 2's mechanism: value speculation
converts load-dependence wait cycles into (fewer) recovery cycles on
the second engine.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.evaluation.experiment import EvaluationSettings
from repro.obs.cycles_cli import artifact_payload, collect_stacks

GOLDEN = Path(__file__).parent / "golden" / "cycles_scale04.json"

#: Dynamic-recovery causes the speculative machine introduces.
RECOVERY = ("check_compare", "sync_stall", "reexec", "flush_recovery")


@pytest.fixture(scope="module")
def payload():
    settings = EvaluationSettings(scale=0.4).with_threshold(0.65)
    roles = ["base", "wide"]
    stacks = collect_stacks(settings, roles)
    return artifact_payload(settings, roles, stacks)


def test_artifact_matches_golden(payload):
    golden = json.loads(GOLDEN.read_text())
    assert payload == golden


def test_every_point_sums_and_covers_suite(payload):
    stacks = payload["stacks"]
    # 8 benchmarks x 2 machines, 3 models each.
    assert len(stacks) == 16
    for key, models in stacks.items():
        assert set(models) == {"nopred", "proposed", "baseline"}
        for model, counts in models.items():
            assert counts, (key, model)
            assert all(v > 0 for v in counts.values())


def test_diff_reproduces_paper_story(payload):
    """proposed - nopred per point: load-wait cycles shrink, recovery
    causes appear."""
    stacks = payload["stacks"]
    total_load_wait_saved = 0
    for key, models in stacks.items():
        nopred = models["nopred"]
        proposed = models["proposed"]
        saved = nopred.get("load_wait", 0) - proposed.get("load_wait", 0)
        # Speculation never *adds* memory-wait cycles at any point...
        assert saved >= 0, key
        total_load_wait_saved += saved
        # ...and every point pays some recovery for its speculation.
        recovery = sum(proposed.get(cause, 0) for cause in RECOVERY)
        assert recovery > 0, key
        assert all(nopred.get(cause, 0) == 0 for cause in RECOVERY), key
    # ...while across the suite the saving is strict: that is the paper.
    assert total_load_wait_saved > 0


def test_trade_is_profitable_in_aggregate(payload):
    """The recovery cycles bought must cost less than the wait cycles
    saved — otherwise the proposed machine would not speed up."""
    totals = {"nopred": 0, "proposed": 0}
    for models in payload["stacks"].values():
        for model in totals:
            totals[model] += sum(models[model].values())
    assert totals["proposed"] < totals["nopred"]
