"""Typed trace events and simulator instrumentation.

Includes the PR's acceptance check: for a metrics-enabled run of the
worked example, ``cce.flush + cce.reexec`` in the snapshot equals the
simulator's own ``flushed + executed`` counters — and the same identity
holds for a whole-program simulation.
"""

import pytest

from repro.evaluation.paper_example import run_example
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    CheckEvent,
    ExecuteEvent,
    FlushEvent,
    LdPredEvent,
    OvbTransitionEvent,
    SpeculateEvent,
    StallEvent,
    SyncClearEvent,
    SyncSetEvent,
    TraceSink,
)
from repro.core.machine_sim import simulate_block


@pytest.fixture(scope="module")
def example():
    return run_example()


def _resimulate(example, scenario, metrics=None):
    l4, l7 = example.spec_schedule.spec.ldpred_ids
    outcomes = {
        "both correct": {l4: True, l7: True},
        "r7 mispredicted": {l4: True, l7: False},
        "r4 mispredicted": {l4: False, l7: True},
        "both mispredicted": {l4: False, l7: False},
    }[scenario]
    kwargs = {"metrics": metrics} if metrics is not None else {}
    return simulate_block(
        example.spec_schedule, outcomes, collect_trace=True, **kwargs
    )


class TestTypedEvents:
    def test_event_kinds_present(self, example):
        run = example.scenarios["r7 mispredicted"]
        kinds = {e.kind for e in run.trace}
        assert {"ldpred", "speculate", "check", "flush", "execute",
                "sync_set", "sync_clear", "ovb_transition"} <= kinds

    def test_events_sorted_by_cycle(self, example):
        for run in example.scenarios.values():
            cycles = [e.cycle for e in run.trace]
            assert cycles == sorted(cycles)

    def test_check_events_match_outcomes(self, example):
        run = example.scenarios["both mispredicted"]
        checks = [e for e in run.trace if isinstance(e, CheckEvent)]
        assert len(checks) == 2
        assert all(not e.correct for e in checks)

    def test_ldpred_events_one_per_prediction(self, example):
        run = example.scenarios["both correct"]
        assert len([e for e in run.trace if isinstance(e, LdPredEvent)]) == 2

    def test_flush_and_execute_partition_ccb(self, example):
        run = example.scenarios["r7 mispredicted"]
        flushes = [e for e in run.trace if isinstance(e, FlushEvent)]
        executes = [e for e in run.trace if isinstance(e, ExecuteEvent)]
        assert len(flushes) == run.flushed == 2
        assert len(executes) == run.executed == 2

    def test_speculate_events_cover_ccb_inserts(self, example):
        run = example.scenarios["both correct"]
        inserts = [e for e in run.trace if isinstance(e, SpeculateEvent)]
        assert len(inserts) == run.flushed + run.executed == 4

    def test_as_dict_is_json_friendly(self, example):
        import json

        run = example.scenarios["r4 mispredicted"]
        payload = [e.as_dict() for e in run.trace]
        text = json.dumps(payload)
        assert '"kind"' in text and '"engine"' in text

    def test_str_has_engine_prefix(self, example):
        run = example.scenarios["r4 mispredicted"]
        by_engine = {str(e).split(":")[0] for e in run.trace}
        assert {"VLIW", "CCE", "OVB", "SYNC"} <= by_engine

    def test_sink_of_kind(self):
        sink = TraceSink()
        sink.emit(SyncSetEvent(cycle=0, bit=1))
        sink.emit(SyncClearEvent(cycle=3, bit=1))
        assert len(sink) == 2
        assert [e.kind for e in sink.of_kind("sync_set")] == ["sync_set"]


class TestMetricsInstrumentation:
    def test_flush_reexec_identity_block(self, example):
        """Acceptance: snapshot flush+reexec == simulator flushed+executed."""
        for scenario in (
            "both correct",
            "r7 mispredicted",
            "r4 mispredicted",
            "both mispredicted",
        ):
            registry = MetricsRegistry()
            run = _resimulate(example, scenario, metrics=registry)
            snap = registry.snapshot()
            assert (
                snap.counter("cce.flush") + snap.counter("cce.reexec")
                == run.flushed + run.executed
            ), scenario

    def test_stall_cycles_counter(self, example):
        registry = MetricsRegistry()
        run = _resimulate(example, "both mispredicted", metrics=registry)
        snap = registry.snapshot()
        assert snap.counter("vliw.stall_cycles") == run.stall_cycles
        stall_events = [e for e in run.trace if isinstance(e, StallEvent)]
        assert sum(e.stall for e in stall_events) == run.stall_cycles

    def test_prediction_counters(self, example):
        registry = MetricsRegistry()
        run = _resimulate(example, "r4 mispredicted", metrics=registry)
        snap = registry.snapshot()
        assert snap.counter("vliw.predictions") == run.predictions == 2
        assert snap.counter("vliw.mispredictions") == run.mispredictions == 1

    def test_ovb_transition_counters_match_events(self, example):
        registry = MetricsRegistry()
        run = _resimulate(example, "r7 mispredicted", metrics=registry)
        snap = registry.snapshot()
        transitions = [e for e in run.trace if isinstance(e, OvbTransitionEvent)]
        family = snap.counter_family("ovb.state_transitions")
        assert sum(family.values()) == len(transitions)
        # The r7 scenario exercises every OVB state.
        assert set(family) == {"PN", "RN", "C", "R"}

    def test_ccb_occupancy_histogram(self, example):
        registry = MetricsRegistry()
        _resimulate(example, "both correct", metrics=registry)
        h = registry.snapshot().histogram("cce.ccb_occupancy")
        assert h.count == 4  # one sample per CCB insert
        assert h.max >= 1

    def test_metrics_without_trace(self, example):
        """Metrics do not require trace collection (and vice versa)."""
        l4, l7 = example.spec_schedule.spec.ldpred_ids
        registry = MetricsRegistry()
        run = simulate_block(
            example.spec_schedule, {l4: False, l7: False}, metrics=registry
        )
        assert run.trace == ()
        assert registry.counter("vliw.predictions") == 2

    def test_disabled_metrics_identical_timing(self, example):
        l4, l7 = example.spec_schedule.spec.ldpred_ids
        plain = simulate_block(example.spec_schedule, {l4: False, l7: True})
        metered = simulate_block(
            example.spec_schedule,
            {l4: False, l7: True},
            metrics=MetricsRegistry(),
        )
        assert plain == metered


class TestProgramLevelMetrics:
    @pytest.fixture(scope="class")
    def compiled(self):
        from repro.machine.configs import PLAYDOH_4W
        from repro.core.metrics import compile_program
        from repro.profiling.profile_run import profile_program
        from repro.workloads.suite import load_benchmark

        program = load_benchmark("li", scale=0.2)
        profile = profile_program(program)
        return compile_program(program, PLAYDOH_4W, profile)

    def test_flush_reexec_identity_program(self, compiled):
        from repro.core.program_sim import simulate_program

        result = simulate_program(compiled, collect_metrics=True)
        snap = result.metrics
        assert snap is not None
        assert (
            snap.counter("cce.flush") + snap.counter("cce.reexec")
            == result.cc_flushed + result.cc_executed
        )
        assert snap.counter("vliw.stall_cycles") == result.stall_cycles
        assert (
            snap.counter("vliw.predictions")
            == result.predictions
            == snap.counter("predict.hit", label="hybrid")
            + snap.counter("predict.miss", label="hybrid")
        )

    def test_metrics_none_when_disabled(self, compiled):
        from repro.core.program_sim import simulate_program

        assert simulate_program(compiled).metrics is None

    def test_metrics_collection_leaves_timing_unchanged(self, compiled):
        from repro.core.program_sim import simulate_program

        plain = simulate_program(compiled)
        metered = simulate_program(compiled, collect_metrics=True)
        assert plain.cycles_proposed == metered.cycles_proposed
        assert plain.cycles_baseline == metered.cycles_baseline
        assert plain.mispredictions == metered.mispredictions

    def test_metrics_for_memoised_and_seeds_run_cache(self, compiled):
        label = compiled.speculated_labels[0]
        comp = compiled.block(label)
        n = len(comp.predicted_load_ids)
        first = comp.metrics_for((False,) * n)
        second = comp.metrics_for((False,) * n)
        assert first is second
        run = comp.run_for((False,) * n)
        assert first.counter("cce.flush") + first.counter("cce.reexec") == (
            run.flushed + run.executed
        )

    def test_static_snapshot_weighted_like_length_fraction(self, compiled):
        snap = compiled.metrics_snapshot(best=True)
        total_weight = sum(
            compiled.profile.blocks.count(label)
            for label in compiled.speculated_labels
        )
        # Every weighted instance predicts at least one load.
        assert snap.counter("vliw.predictions") >= total_weight

    def test_pickled_compilation_drops_metrics_cache(self, compiled):
        import pickle

        label = compiled.speculated_labels[0]
        comp = compiled.block(label)
        n = len(comp.predicted_load_ids)
        comp.metrics_for((True,) * n)
        clone = pickle.loads(pickle.dumps(comp))
        assert clone._metrics_cache == {}
        assert clone._pattern_cache == {}
