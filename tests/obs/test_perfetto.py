"""Chrome trace-event export: structure, validation, runner spans."""

import json

import pytest

from repro.evaluation.paper_example import run_example
from repro.obs.perfetto import (
    RUNNER_PID,
    block_run_events,
    chrome_trace,
    runner_span_events,
    validate_chrome_trace,
    write_trace,
)
from repro.core.machine_sim import simulate_worst_case


@pytest.fixture(scope="module")
def example():
    return run_example()


@pytest.fixture(scope="module")
def trace_events(example):
    run = example.scenarios["r7 mispredicted"]
    return block_run_events(example.spec_schedule, run)


class TestBlockRunEvents:
    def test_untraced_run_rejected(self, example):
        bare = simulate_worst_case(example.spec_schedule)
        with pytest.raises(ValueError, match="collect_trace"):
            block_run_events(example.spec_schedule, bare)

    def test_both_engine_processes_present(self, trace_events):
        names = {
            e["args"]["name"]
            for e in trace_events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert any("VLIW Engine" in n for n in names)
        assert any("Compensation Code Engine" in n for n in names)

    def test_op_spans_cover_issue_times(self, example, trace_events):
        run = example.scenarios["r7 mispredicted"]
        op_spans = [
            e for e in trace_events if e["ph"] == "X" and e["name"].startswith("op")
        ]
        assert len(op_spans) == len(run.issue_times)

    def test_cce_spans_on_second_process(self, trace_events):
        cce = [
            e
            for e in trace_events
            if e["ph"] == "X" and ("flush" in e["name"] or "execute" in e["name"])
        ]
        assert cce
        assert {e["pid"] for e in cce} == {2}

    def test_base_pid_offsets_processes(self, example):
        run = example.scenarios["r7 mispredicted"]
        events = block_run_events(example.spec_schedule, run, base_pid=10)
        assert {e["pid"] for e in events} == {11, 12}

    def test_validates_clean(self, trace_events):
        assert validate_chrome_trace(chrome_trace(trace_events)) == []


class TestRunnerSpanEvents:
    def _stream(self):
        return [
            {"ts": 0.0, "event": "run_start", "total_jobs": 2, "jobs": 1},
            {"ts": 0.1, "event": "job_start", "job": "profile:li",
             "stage": "profile", "key": "k1", "attempt": 1},
            {"ts": 0.6, "event": "job_finish", "job": "profile:li",
             "stage": "profile", "key": "k1", "cached": False,
             "wall_time": 0.5, "attempt": 1},
            {"ts": 0.7, "event": "job_finish", "job": "simulate:li",
             "stage": "simulate", "key": "k2", "cached": True,
             "wall_time": 0.0, "attempt": 1},
            {"ts": 0.8, "event": "job_failed", "job": "simulate:x",
             "stage": "simulate", "key": "k3", "attempts": 3, "error": "boom"},
            {"ts": 0.9, "event": "run_finish", "executed": 1, "cache_hits": 1,
             "retries": 0, "failures": 1, "wall_time": 0.9,
             "executed_by_stage": {"profile": 1}},
        ]

    def test_job_pairs_become_spans(self):
        events = runner_span_events(self._stream())
        spans = [e for e in events if e["ph"] == "X" and e["name"] == "profile:li"]
        assert len(spans) == 1
        assert spans[0]["pid"] == RUNNER_PID
        assert spans[0]["dur"] == pytest.approx(0.5e6)

    def test_cached_jobs_become_instants(self):
        events = runner_span_events(self._stream())
        instants = [e for e in events if e["ph"] == "i"]
        assert any("cached" in e["name"] for e in instants)

    def test_failures_become_instants(self):
        events = runner_span_events(self._stream())
        assert any(
            e["ph"] == "i" and e["name"].startswith("FAILED") for e in events
        )

    def test_run_span_encloses_everything(self):
        events = runner_span_events(self._stream())
        run = [e for e in events if e["ph"] == "X" and e["name"] == "run"]
        assert len(run) == 1
        assert run[0]["dur"] == pytest.approx(0.9e6)

    def test_stage_threads_named(self):
        events = runner_span_events(self._stream())
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"profile", "simulate", "run"} <= names

    def test_validates_clean(self):
        assert validate_chrome_trace(chrome_trace(runner_span_events(self._stream()))) == []


class TestValidation:
    def test_accepts_bare_array(self):
        assert validate_chrome_trace([]) == []

    def test_rejects_non_container(self):
        assert validate_chrome_trace(42)

    def test_rejects_missing_fields(self):
        problems = validate_chrome_trace([{"ph": "i"}])
        assert any("lacks" in p for p in problems)

    def test_rejects_span_without_duration(self):
        event = {"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 0}
        assert any("dur" in p for p in validate_chrome_trace([event]))

    def test_rejects_unserialisable(self):
        event = {"name": "x", "ph": "i", "pid": 1, "tid": 0, "ts": 0,
                 "args": {"bad": object()}}
        assert any("serialisable" in p for p in validate_chrome_trace([event]))


class TestWriteTrace:
    def test_roundtrip(self, tmp_path, trace_events):
        path = tmp_path / "out.trace.json"
        write_trace(str(path), chrome_trace(trace_events, other_data={"k": "v"}))
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"] == {"k": "v"}
        assert len(payload["traceEvents"]) == len(trace_events)

    def test_invalid_payload_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="invalid chrome trace"):
            write_trace(str(tmp_path / "bad.json"), {"traceEvents": [{}]})


class TestCycleCounterTrack:
    """CPI counter tracks and buffer-stall spans in the block export."""

    @pytest.fixture(scope="class")
    def cycles_run(self, example):
        from repro.core.machine_sim import simulate_block

        outcomes = {l: False for l in example.spec_schedule.spec.ldpred_ids}
        return simulate_block(
            example.spec_schedule,
            outcomes,
            collect_trace=True,
            collect_cycles=True,
        )

    def test_counter_events_per_cause(self, example, cycles_run):
        events = block_run_events(example.spec_schedule, cycles_run)
        counters = [e for e in events if e.get("ph") == "C"]
        assert counters, "no counter events emitted"
        assert all(e["name"].startswith("cpi:") for e in counters)
        # Cumulative: the last sample per cause equals the stack total.
        finals = {}
        for e in counters:
            finals[e["name"][len("cpi:"):]] = e["args"]["cycles"]
        assert finals == dict(cycles_run.cycle_stack)
        assert validate_chrome_trace(chrome_trace(events)) == []

    def test_no_counters_without_cycle_collection(self, trace_events):
        assert [e for e in trace_events if e.get("ph") == "C"] == []

    def test_ccb_stall_becomes_span(self, example):
        from repro.core.machine_sim import simulate_block

        outcomes = {l: False for l in example.spec_schedule.spec.ldpred_ids}
        run = simulate_block(
            example.spec_schedule,
            outcomes,
            collect_trace=True,
            collect_cycles=True,
            ccb_capacity=3,
        )
        assert dict(run.cycle_stack).get("ccb_pressure", 0) > 0
        events = block_run_events(example.spec_schedule, run)
        spans = [
            e
            for e in events
            if e.get("cat") == "buffer" and e.get("ph") == "X"
        ]
        assert spans, "CCB stall did not render as a span"
        assert all(e["dur"] > 0 for e in spans)
        assert validate_chrome_trace(chrome_trace(events)) == []

    def test_ovb_overflow_becomes_instant(self, example):
        from dataclasses import replace

        from repro.obs.trace import BufferStallEvent

        run = example.scenarios["r7 mispredicted"]
        boosted = replace(
            run,
            trace=run.trace
            + (BufferStallEvent(cycle=4, buffer="ovb", op_id=99, stall=0),),
        )
        events = block_run_events(example.spec_schedule, boosted)
        instants = [
            e
            for e in events
            if e.get("cat") == "buffer" and e.get("ph") == "i"
        ]
        assert len(instants) == 1
        assert validate_chrome_trace(chrome_trace(events)) == []
