"""Property test: CPI stacks sum exactly to simulated cycles.

Random programs from the synthetic fuzzer go through the full pipeline
(profile, compile, simulate) on several machine specs — including a
bounded-CCB/OVB variant that exercises the ``ccb_pressure`` path — and
at several speculation thresholds.  On every one, the cycle-accounting
invariant must hold at both granularities:

* **block level**: ``sum(BlockRun.cycle_stack) == effective_length``
  for both the all-correct and all-wrong prediction patterns (the VLIW
  engine and the CC engine both contribute cycles);
* **program level**: each of the three machine models' stacks sums
  exactly to its simulated cycle total.
"""

from __future__ import annotations

import pytest

from repro.core.metrics import compile_program
from repro.core.program_sim import simulate_program
from repro.core.speculation import SpeculationConfig
from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W, PLAYDOH_4W_SPEC
from repro.obs.cycles import CAUSES
from repro.profiling.profile_run import profile_program
from repro.workloads.synthetic import random_program

#: Tight CCB so the fuzz actually visits ``ccb_pressure`` back-pressure
#: (a full CCB stalls issue; a full OVB is a hard error, so its bound
#: stays above what the fuzzer's speculation can fill).
TIGHT_4W = PLAYDOH_4W_SPEC.override(
    name="playdoh-4w-tight", ccb_capacity=2, ovb_capacity=16
).build()

MACHINES = (PLAYDOH_4W, PLAYDOH_8W, TIGHT_4W)
SEEDS = list(range(8))


def _assert_block_invariants(compilation):
    from repro.core.machine_sim import simulate_block

    for label in compilation.speculated_labels:
        spec_schedule = compilation.block(label).spec_schedule
        ldpreds = spec_schedule.spec.ldpred_ids
        for correct in (True, False):
            run = simulate_block(
                spec_schedule,
                {op: correct for op in ldpreds},
                collect_cycles=True,
            )
            stack = dict(run.cycle_stack)
            assert sum(stack.values()) == run.effective_length, (
                label,
                correct,
                stack,
            )
            assert all(cycles > 0 for cycles in stack.values())


def _assert_program_invariants(result):
    assert result.cycle_stacks is not None
    totals = {
        "nopred": result.cycles_nopred,
        "proposed": result.cycles_proposed,
        "baseline": result.cycles_baseline,
    }
    assert set(result.cycle_stacks) == set(totals)
    for model, stack in result.cycle_stacks.items():
        assert sum(stack.values()) == totals[model], (model, stack)
        assert all(cycles > 0 for cycles in stack.values())
        assert set(stack) <= set(CAUSES)


@pytest.mark.parametrize("seed", SEEDS)
def test_cycle_stacks_sum_on_random_programs(seed):
    program = random_program(seed)
    profile = profile_program(program)
    for machine in MACHINES:
        compilation = compile_program(program, machine, profile)
        _assert_block_invariants(compilation)
        result = simulate_program(compilation, collect_cycles=True)
        _assert_program_invariants(result)


@pytest.mark.parametrize("threshold", (0.5, 0.65, 0.9))
def test_cycle_stacks_sum_across_thresholds(threshold):
    """The invariant is threshold-independent: sweeping speculation
    aggressiveness changes *what* is charged, never the totals."""
    config = SpeculationConfig(threshold=threshold)
    for seed in (1, 4):
        program = random_program(seed)
        profile = profile_program(program)
        for machine in (PLAYDOH_4W, TIGHT_4W):
            compilation = compile_program(program, machine, profile, config)
            result = simulate_program(compilation, collect_cycles=True)
            _assert_program_invariants(result)


def test_tight_ccb_charges_ccb_pressure():
    """The bounded-CCB machine must actually visit the back-pressure
    path somewhere in the seed set, or the fuzz proves nothing about
    the ``ccb_pressure`` cause."""
    pressure = 0
    for seed in SEEDS:
        program = random_program(seed)
        profile = profile_program(program)
        compilation = compile_program(program, TIGHT_4W, profile)
        result = simulate_program(compilation, collect_cycles=True)
        pressure += result.cycle_stacks["proposed"].get("ccb_pressure", 0)
    assert pressure > 0


def test_disabled_collection_leaves_no_stacks():
    program = random_program(0)
    profile = profile_program(program)
    compilation = compile_program(program, PLAYDOH_4W, profile)
    result = simulate_program(compilation)
    assert result.cycle_stacks is None
