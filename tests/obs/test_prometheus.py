"""Prometheus text exposition: golden output, escaping, round-trip.

The encoder's contract is *determinism* — families sorted by exported
name, samples by rendered labels, label pairs by key — so the golden
test pins the exact byte-for-byte exposition of a representative
snapshot, and property-style checks cover the escaping and parsing
corners a scraper would trip over.
"""

from __future__ import annotations

import math

from repro.obs.metrics import HistogramSummary, MetricsRegistry, MetricsSnapshot
from repro.obs.prometheus import (
    CONTENT_TYPE,
    encode_exposition,
    escape_label_value,
    format_value,
    histogram_from_samples,
    label_pairs,
    parse_exposition,
    sanitize_name,
    split_key,
)


class TestNameAndLabelMapping:
    def test_sanitize_name_prefixes_and_flattens(self):
        assert sanitize_name("service.leases") == "repro_service_leases"
        assert sanitize_name("a-b c.d") == "repro_a_b_c_d"
        assert sanitize_name("x", namespace="") == "x"
        assert sanitize_name("9lives", namespace="").startswith("_")

    def test_split_key(self):
        assert split_key("service.jobs{state=done}") == (
            "service.jobs",
            "state=done",
        )
        assert split_key("plain") == ("plain", None)
        # A '{' without a trailing '}' is part of the name, not a label.
        assert split_key("odd{brace") == ("odd{brace", None)

    def test_label_pairs_kv_and_bare(self):
        assert label_pairs("worker=w1,stage=sim") == [
            ("stage", "sim"),
            ("worker", "w1"),
        ]
        # The simulator's historical bare-label style.
        assert label_pairs("stride+fcm") == [("label", "stride+fcm")]
        assert label_pairs(None) == []
        assert label_pairs("") == []

    def test_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"


class TestGoldenExposition:
    def test_representative_snapshot_is_byte_stable(self):
        registry = MetricsRegistry()
        registry.inc("service.leases", 6)
        registry.inc("service.completes", 5, label="ok")
        registry.inc("service.completes", 1, label="retry")
        registry.inc("service.jobs_done", 3, label="worker=w1")
        registry.inc("service.jobs_done", 2, label='worker=w"2\\')
        registry.set_gauge("service.uptime_seconds", 12.5)
        for value in (0.1, 0.2, 0.3, 0.4):
            registry.observe("service.queue_wait_seconds", value, label="sim")
        expected = "\n".join(
            [
                "# TYPE repro_service_completes_total counter",
                'repro_service_completes_total{label="ok"} 5',
                'repro_service_completes_total{label="retry"} 1',
                "# TYPE repro_service_jobs_done_total counter",
                'repro_service_jobs_done_total{worker="w1"} 3',
                'repro_service_jobs_done_total{worker="w\\"2\\\\"} 2',
                "# TYPE repro_service_leases_total counter",
                "repro_service_leases_total 6",
                "# TYPE repro_service_queue_wait_seconds summary",
                'repro_service_queue_wait_seconds{label="sim",quantile="0.5"} 0.25',
                'repro_service_queue_wait_seconds{label="sim",quantile="0.95"} '
                "0.38499999999999995",
                'repro_service_queue_wait_seconds{label="sim",quantile="0.99"} '
                "0.39699999999999996",
                'repro_service_queue_wait_seconds_sum{label="sim"} 1',
                'repro_service_queue_wait_seconds_count{label="sim"} 4',
                'repro_service_queue_wait_seconds_min{label="sim"} 0.1',
                'repro_service_queue_wait_seconds_max{label="sim"} 0.4',
                "# TYPE repro_service_uptime_seconds gauge",
                "repro_service_uptime_seconds 12.5",
                "",
            ]
        )
        assert encode_exposition(registry.snapshot()) == expected

    def test_empty_snapshot(self):
        assert encode_exposition(MetricsSnapshot.empty()) == ""

    def test_content_type_pins_exposition_version(self):
        assert "version=0.0.4" in CONTENT_TYPE

    def test_encoding_is_deterministic_across_insertion_orders(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x.one"), a.inc("x.two", label="k=v")
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 1.0)
        b.inc("x.two", label="k=v"), b.inc("x.one")
        assert encode_exposition(a.snapshot()) == encode_exposition(b.snapshot())


class TestRoundTrip:
    def test_counters_and_gauges_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("service.leases", 42)
        registry.inc("service.jobs", 7, label="state=done")
        registry.set_gauge("service.workers", 3)
        samples = parse_exposition(encode_exposition(registry.snapshot()))
        assert samples["repro_service_leases_total"] == 42
        assert samples['repro_service_jobs_total{state="done"}'] == 7
        assert samples["repro_service_workers"] == 3

    def test_histogram_summary_round_trip(self):
        registry = MetricsRegistry()
        values = [0.01 * n for n in range(1, 101)]
        for value in values:
            registry.observe("svc.latency", value)
        original = registry.snapshot().histograms["svc.latency"]
        samples = parse_exposition(encode_exposition(registry.snapshot()))
        name = "repro_svc_latency"
        # Quantile samples match the reservoir percentiles exactly.
        assert samples[f'{name}{{quantile="0.5"}}'] == original.p50
        assert samples[f'{name}{{quantile="0.95"}}'] == original.p95
        assert samples[f'{name}{{quantile="0.99"}}'] == original.p99
        assert samples[f"{name}_min"] == original.min
        assert samples[f"{name}_max"] == original.max
        rebuilt = histogram_from_samples(samples, name)
        assert rebuilt.count == original.count
        assert rebuilt.total == original.total
        assert abs(rebuilt.mean - original.mean) < 1e-12

    def test_parser_skips_comments_and_junk(self):
        text = (
            "# HELP something\n"
            "# TYPE x counter\n"
            "x_total 3\n"
            "not a sample line at all\n"
            "y{a=\"b\"} 2.5\n"
            "z NaN\n"
        )
        samples = parse_exposition(text)
        assert samples["x_total"] == 3
        assert samples['y{a="b"}'] == 2.5
        assert math.isnan(samples["z"])
        assert "not" not in samples

    def test_special_values_survive(self):
        snapshot = MetricsSnapshot(
            counters={}, gauges={"g.inf": math.inf, "g.neg": -math.inf}, histograms={}
        )
        samples = parse_exposition(encode_exposition(snapshot))
        assert samples["repro_g_inf"] == math.inf
        assert samples["repro_g_neg"] == -math.inf


class TestMergedFleetEncoding:
    def test_worker_snapshots_merge_then_encode(self):
        """Broker + two pushed worker snapshots → one deterministic scrape."""
        broker = MetricsRegistry()
        broker.inc("service.leases", 4)
        w1, w2 = MetricsRegistry(), MetricsRegistry()
        w1.inc("worker.jobs_done", 3, label="worker=w1")
        w2.inc("worker.jobs_done", 1, label="worker=w2")
        w1.observe("worker.job_seconds", 0.5, label="worker=w1")
        w2.observe("worker.job_seconds", 1.5, label="worker=w2")
        merged = (
            broker.snapshot()
            .merged(MetricsSnapshot.from_dict(w1.snapshot().as_dict()))
            .merged(MetricsSnapshot.from_dict(w2.snapshot().as_dict()))
        )
        samples = parse_exposition(encode_exposition(merged))
        assert samples["repro_service_leases_total"] == 4
        assert samples['repro_worker_jobs_done_total{worker="w1"}'] == 3
        assert samples['repro_worker_jobs_done_total{worker="w2"}'] == 1
        assert samples['repro_worker_job_seconds_count{worker="w1"}'] == 1
        assert samples['repro_worker_job_seconds_count{worker="w2"}'] == 1
