"""Unit tests for the cycle-accounting engine (:mod:`repro.obs.cycles`)."""

from __future__ import annotations

import json

import pytest

from repro.ir.opcodes import Opcode
from repro.obs.cycles import (
    CAUSES,
    CPI_SCHEMA_VERSION,
    NULL_CYCLES,
    CPIStack,
    CycleLedger,
    attribute_schedule,
    instruction_cause,
    operation_wait_cause,
    render_diff,
    render_stack,
)
from repro.sched.list_scheduler import ListScheduler


class TestCycleLedger:
    def test_charges_accumulate(self):
        ledger = CycleLedger()
        ledger.charge("issue", 3)
        ledger.charge("issue", 2)
        ledger.charge("dep_stall", 1)
        assert ledger.counts == {"issue": 5, "dep_stall": 1}
        assert ledger.total() == 6

    def test_zero_and_negative_charges_are_noops(self):
        ledger = CycleLedger()
        ledger.charge("issue", 0)
        ledger.charge("issue", -4)
        assert ledger.counts == {}
        assert ledger.total() == 0

    def test_disabled_ledger_rejects_charges(self):
        ledger = CycleLedger(enabled=False)
        ledger.charge("issue", 10)
        assert ledger.counts == {}
        assert not NULL_CYCLES.enabled
        NULL_CYCLES.charge("issue", 10)
        assert NULL_CYCLES.counts == {}

    def test_events_only_with_record_events_and_timestamp(self):
        plain = CycleLedger()
        plain.charge("issue", 1, at=5)
        assert plain.events == []
        recording = CycleLedger(record_events=True)
        recording.charge("issue", 1, at=5)
        recording.charge("dep_stall", 2)  # no timestamp -> count only
        assert recording.events == [(5, "issue", 1)]
        assert recording.counts == {"issue": 1, "dep_stall": 2}


class TestCauseHelpers:
    def test_operation_wait_causes(self):
        assert operation_wait_cause(Opcode.LOAD) == "load_wait"
        assert operation_wait_cause(Opcode.LDPRED) == "load_wait"
        assert operation_wait_cause(Opcode.CHKPRED) == "check_compare"
        assert operation_wait_cause(Opcode.ADD) == "dep_stall"

    def test_causes_are_unique_and_issue_first(self):
        assert len(set(CAUSES)) == len(CAUSES)
        assert CAUSES[0] == "issue"


class TestAttributeSchedule:
    def test_sums_to_schedule_length(self, m4, straight_block):
        schedule = ListScheduler(m4).schedule_block(straight_block)
        counts = attribute_schedule(schedule)
        assert sum(counts.values()) == schedule.length
        # One issue-class cycle per long instruction.
        issued = counts.get("issue", 0) + counts.get("check_compare", 0)
        assert issued == len(list(schedule.instructions()))

    def test_straight_block_waits_on_memory(self, m4, straight_block):
        """The load feeds the arithmetic chain, so the gap after it must
        be attributed to memory latency, not generic dependence."""
        schedule = ListScheduler(m4).schedule_block(straight_block)
        counts = attribute_schedule(schedule)
        if schedule.length > len(list(schedule.instructions())):
            assert counts.get("load_wait", 0) > 0


class TestCPIStack:
    def test_of_drops_zero_counts(self):
        stack = CPIStack.of({"issue": 4, "dep_stall": 0})
        assert stack.counts == {"issue": 4}
        assert stack.total == 4
        assert stack.get("dep_stall") == 0

    def test_fraction(self):
        stack = CPIStack.of({"issue": 3, "load_wait": 1})
        assert stack.fraction("issue") == pytest.approx(0.75)
        assert CPIStack.of({}).fraction("issue") == 0.0

    def test_merged_and_scaled(self):
        a = CPIStack.of({"issue": 2, "load_wait": 1})
        b = CPIStack.of({"issue": 1, "reexec": 5})
        merged = a.merged(b)
        assert merged.counts == {"issue": 3, "load_wait": 1, "reexec": 5}
        assert a.scaled(3).counts == {"issue": 6, "load_wait": 3}
        assert a.scaled(0).counts == {}
        with pytest.raises(ValueError):
            a.scaled(-1)

    def test_diff(self):
        new = CPIStack.of({"issue": 5, "reexec": 2})
        old = CPIStack.of({"issue": 5, "load_wait": 3})
        assert new.diff(old) == {"reexec": 2, "load_wait": -3}
        assert new.diff(new) == {}

    def test_dominant_excludes_issue_and_breaks_ties_by_order(self):
        stack = CPIStack.of({"issue": 100, "load_wait": 7, "dep_stall": 7})
        # load_wait precedes dep_stall in CAUSES display order.
        assert stack.dominant() == "load_wait"
        assert stack.dominant(exclude=("issue", "load_wait")) == "dep_stall"
        assert CPIStack.of({"issue": 9}).dominant() is None
        assert CPIStack.of({}).dominant() is None

    def test_round_trip(self):
        stack = CPIStack.of({"issue": 4, "sync_stall": 2})
        data = stack.as_dict()
        assert data["schema"] == CPI_SCHEMA_VERSION
        assert data["total"] == 6
        assert CPIStack.from_dict(data).counts == stack.counts
        # JSON round trip too.
        assert CPIStack.from_dict(json.loads(json.dumps(data))).counts == stack.counts

    def test_from_dict_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            CPIStack.from_dict({"schema": 999, "counts": {}})


class TestRenderers:
    def test_render_stack(self):
        stack = CPIStack.of({"issue": 8, "load_wait": 2})
        text = render_stack(stack, title="demo", width=10)
        assert text.splitlines()[0] == "demo"
        assert "total cycles: 10" in text
        assert "issue" in text and "load_wait" in text
        assert "80.0%" in text and "20.0%" in text
        # Display order: issue before load_wait.
        assert text.index("issue") < text.index("load_wait")

    def test_render_stack_empty(self):
        text = render_stack(CPIStack.of({}))
        assert "total cycles: 0" in text

    def test_render_diff(self):
        new = CPIStack.of({"issue": 8, "reexec": 3})
        old = CPIStack.of({"issue": 8, "load_wait": 5})
        text = render_diff(new, old, title="story")
        assert "story" in text
        assert "total cycles: 13 -> 11 (-2)" in text
        assert "+" in text and "-" in text

    def test_render_diff_identical(self):
        stack = CPIStack.of({"issue": 8})
        assert "(identical)" in render_diff(stack, stack)


class TestCLIHelpers:
    def test_artifact_round_trip(self, tmp_path):
        from repro.obs.cycles_cli import (
            ARTIFACT_SCHEMA_VERSION,
            dump_artifact,
            load_artifact,
        )

        payload = {
            "schema": ARTIFACT_SCHEMA_VERSION,
            "cpi_schema": CPI_SCHEMA_VERSION,
            "settings": {},
            "stacks": {"x@base": {"proposed": {"issue": 3}}},
        }
        path = tmp_path / "cycles.json"
        dump_artifact(payload, str(path))
        assert load_artifact(str(path)) == payload
        # Deterministic bytes.
        first = path.read_bytes()
        dump_artifact(payload, str(path))
        assert path.read_bytes() == first

    def test_load_artifact_rejects_unknown_schema(self, tmp_path):
        from repro.obs.cycles_cli import load_artifact

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ValueError, match="schema"):
            load_artifact(str(path))

    def test_diff_requires_two_artifacts(self, capsys):
        from repro.obs.cycles_cli import main

        assert main(["diff", "only-one.json"]) == 2
        assert main(["report", "stray.json"]) == 2
        assert main(["report", "--models", "bogus"]) == 2

    def test_render_artifact_diff(self):
        from repro.obs.cycles_cli import render_artifact_diff

        old = {"stacks": {"c@base": {"proposed": {"issue": 5, "load_wait": 4}}}}
        new = {"stacks": {"c@base": {"proposed": {"issue": 5, "reexec": 1}}}}
        text = render_artifact_diff(old, new, width=10)
        assert "c@base [proposed]" in text
        assert "load_wait" in text and "reexec" in text
