"""End-to-end tests of the ``repro-trace`` CLI."""

import json

import pytest

from repro.obs.cli import main
from repro.obs.perfetto import validate_chrome_trace


class TestExampleMode:
    def test_default_export(self, tmp_path, capsys):
        trace = tmp_path / "example.trace.json"
        metrics = tmp_path / "example.metrics.json"
        rc = main(["--out", str(trace), "--metrics", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "consistency" in out and "OK" in out

        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) == []
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert any("VLIW Engine" in n for n in names)
        assert any("Compensation Code Engine" in n for n in names)

        snap = json.loads(metrics.read_text())
        counters = snap["counters"]
        assert counters["cce.flush"] + counters["cce.reexec"] == 4

    def test_scenario_selection(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        rc = main(["--scenario", "both correct", "--out", str(trace)])
        assert rc == 0
        assert "0/2 mispredicted" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self, tmp_path, capsys):
        rc = main(["--scenario", "nope", "--out", str(tmp_path / "t.json")])
        assert rc == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestBenchmarkMode:
    def test_unknown_benchmark_rejected(self, tmp_path, capsys):
        rc = main(["not-a-benchmark", "--out", str(tmp_path / "t.json")])
        assert rc == 2

    def test_li_export(self, tmp_path, capsys):
        trace = tmp_path / "li.trace.json"
        metrics = tmp_path / "li.metrics.json"
        rc = main(
            [
                "li",
                "--scale", "0.2",
                "--max-blocks", "1",
                "--out", str(trace),
                "--metrics", str(metrics),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK" in out

        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["traceEvents"]
        assert payload["otherData"]["benchmark"] == "li"

        snap = json.loads(metrics.read_text())
        counters = snap["counters"]
        assert counters.get("cce.flush", 0) + counters.get("cce.reexec", 0) > 0


class TestRunnerEvents:
    def test_runner_spans_joined_into_trace(self, tmp_path):
        events_path = tmp_path / "run.jsonl"
        records = [
            {"ts": 0.0, "run_id": "r1", "event": "job_start", "job": "profile:li",
             "stage": "profile", "key": "k", "attempt": 1},
            {"ts": 0.5, "run_id": "r1", "event": "job_finish", "job": "profile:li",
             "stage": "profile", "key": "k", "cached": False, "wall_time": 0.5,
             "attempt": 1},
        ]
        events_path.write_text(
            "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )
        trace = tmp_path / "t.json"
        rc = main(["--runner-events", str(events_path), "--out", str(trace)])
        assert rc == 0
        payload = json.loads(trace.read_text())
        assert any(
            e.get("name") == "profile:li" and e["ph"] == "X"
            for e in payload["traceEvents"]
        )
