"""Structured logging: record shape, context propagation, level gating."""

from __future__ import annotations

import io
import json
import threading

from repro.obs.logging import (
    JsonLogger,
    bind_context,
    context_fields,
    get_logger,
    log_context,
)


def _logger(stream: io.StringIO, level: int = 0, **bound) -> JsonLogger:
    return JsonLogger("test", stream=stream, level=level, **bound)


def _records(stream: io.StringIO):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestRecordShape:
    def test_one_line_json_with_standard_fields(self):
        stream = io.StringIO()
        _logger(stream).info("hello", n=3)
        (record,) = _records(stream)
        assert record["level"] == "info"
        assert record["logger"] == "test"
        assert record["msg"] == "hello"
        assert record["n"] == 3
        assert isinstance(record["ts"], float)

    def test_bound_fields_and_child(self):
        stream = io.StringIO()
        logger = _logger(stream, worker_id="w1")
        child = logger.child(job_key="abc")
        child.info("leased")
        (record,) = _records(stream)
        assert record["worker_id"] == "w1"
        assert record["job_key"] == "abc"

    def test_non_serialisable_fields_fall_back_to_str(self):
        stream = io.StringIO()
        _logger(stream).info("x", obj=object())
        (record,) = _records(stream)
        assert "object object" in record["obj"]

    def test_level_gating(self):
        stream = io.StringIO()
        logger = JsonLogger("test", stream=stream, level=30)  # warning
        logger.info("dropped")
        logger.debug("dropped")
        logger.warning("kept")
        logger.error("kept too")
        assert [r["msg"] for r in _records(stream)] == ["kept", "kept too"]


class TestContextPropagation:
    def test_log_context_scopes_fields(self):
        stream = io.StringIO()
        logger = _logger(stream)
        with log_context(sweep_id="s1"):
            with log_context(job_key="k1"):
                logger.info("inner")
            logger.info("outer")
        logger.info("outside")
        inner, outer, outside = _records(stream)
        assert inner["sweep_id"] == "s1" and inner["job_key"] == "k1"
        assert outer["sweep_id"] == "s1" and "job_key" not in outer
        assert "sweep_id" not in outside

    def test_innermost_context_wins(self):
        with log_context(sweep_id="a"):
            with log_context(sweep_id="b"):
                assert context_fields()["sweep_id"] == "b"
            assert context_fields()["sweep_id"] == "a"

    def test_threads_need_an_explicit_context_copy(self):
        # Plain threads start with a fresh context (unlike asyncio
        # tasks); carrying correlation fields across needs
        # copy_context() — or the receiver binding its own identity,
        # which is what the worker's threads do.
        import contextvars

        plain, copied = {}, {}

        with log_context(worker_id="w9"):
            ctx = contextvars.copy_context()
            thread = threading.Thread(
                target=lambda: plain.update(context_fields())
            )
            thread.start()
            thread.join()
            thread = threading.Thread(
                target=lambda: copied.update(ctx.run(context_fields))
            )
            thread.start()
            thread.join()
        assert plain == {}
        assert copied == {"worker_id": "w9"}

    def test_bind_context_persists_without_scope(self):
        def target():
            bind_context(worker_id="w5")
            assert context_fields()["worker_id"] == "w5"

        # Run in a throwaway thread so the unscoped bind cannot leak
        # into other tests' contexts.
        thread = threading.Thread(target=target)
        thread.start()
        thread.join()
        assert "worker_id" not in context_fields()

    def test_explicit_fields_override_context(self):
        stream = io.StringIO()
        logger = _logger(stream)
        with log_context(stage="ctx"):
            logger.info("x", stage="explicit")
        (record,) = _records(stream)
        assert record["stage"] == "explicit"


class TestEnvConfiguration:
    def test_default_level_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
        stream = io.StringIO()
        logger = get_logger("env-test")
        logger.stream = stream
        logger.info("dropped")
        logger.error("kept")
        assert [r["msg"] for r in _records(stream)] == ["kept"]

    def test_text_format_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "text")
        stream = io.StringIO()
        _logger(stream).warning("disk full", path="/tmp")
        line = stream.getvalue()
        assert "WARNING" in line and "disk full" in line and "path=/tmp" in line
        assert not line.lstrip().startswith("{")

    def test_stderr_resolved_at_write_time(self, monkeypatch, capsys):
        logger = get_logger("stderr-test")
        logger.level = 0
        logger.info("to stderr")
        captured = capsys.readouterr()
        record = json.loads(captured.err.strip().splitlines()[-1])
        assert record["msg"] == "to stderr"
