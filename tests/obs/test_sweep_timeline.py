"""Distributed sweep timeline: broker event records → Perfetto tracks."""

from __future__ import annotations

from repro.obs.perfetto import (
    WORKERS_PID,
    chrome_trace,
    sweep_span_events,
    validate_chrome_trace,
)

T0 = 1_700_000_000.0


def _rec(event: str, dt: float, **fields):
    return {"ts": T0 + dt, "event": event, **fields}


def _spans(events, ph="X"):
    return [e for e in events if e.get("ph") == ph]


def _thread_names(events):
    return {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e["name"] == "thread_name"
    }


class TestSweepTimeline:
    def test_queue_wait_and_exec_spans_per_worker(self):
        records = [
            _rec("sweep_submitted", 0.0, sweep="s1", total=2),
            _rec("job_start", 0.5, job="sim-a", stage="simulate", key="k" * 64,
                 worker="w1", attempt=1),
            _rec("job_start", 0.7, job="sim-b", stage="simulate", key="j" * 64,
                 worker="w2", attempt=1),
            _rec("job_finish", 1.5, job="sim-a", stage="simulate", key="k" * 64,
                 worker="w1", cached=False, wall_time=1.0, attempt=1),
            _rec("job_finish", 2.7, job="sim-b", stage="simulate", key="j" * 64,
                 worker="w2", cached=False, wall_time=2.0, attempt=1),
        ]
        events = sweep_span_events(records)
        names = _thread_names(events)
        # One queue thread + one thread per worker.
        assert names[(WORKERS_PID, 0)] == "queue"
        assert set(names.values()) == {"queue", "worker w1", "worker w2"}

        spans = _spans(events)
        queue_spans = [s for s in spans if s["tid"] == 0]
        exec_spans = [s for s in spans if s["tid"] != 0]
        assert len(queue_spans) == 2 and len(exec_spans) == 2
        # Queue-wait measures submit → lease in µs, normalised to t0.
        wait_a = next(s for s in queue_spans if "sim-a" in s["name"])
        assert wait_a["ts"] == 0.0
        assert abs(wait_a["dur"] - 0.5e6) < 1.0
        # Exec span covers job_start → job_finish on the worker's track.
        exec_a = next(s for s in exec_spans if s["name"] == "sim-a")
        assert abs(exec_a["ts"] - 0.5e6) < 1.0
        assert abs(exec_a["dur"] - 1.0e6) < 1.0
        assert exec_a["args"]["worker"] == "w1"
        # Workers land on distinct tracks.
        assert len({s["tid"] for s in exec_spans}) == 2

    def test_submit_time_cache_hits_are_queue_instants(self):
        records = [
            _rec("sweep_submitted", 0.0, sweep="s1", total=1),
            _rec("cache_hit", 0.0, job="sim-a", stage="simulate",
                 key="k" * 64, source="queue"),
            _rec("job_finish", 0.0, job="sim-a", stage="simulate",
                 key="k" * 64, cached=True, wall_time=0.0, attempt=0),
        ]
        events = sweep_span_events(records)
        instants = _spans(events, ph="i")
        assert len(instants) == 1
        assert "cached" in instants[0]["name"]
        assert instants[0]["tid"] == 0
        assert _spans(events) == []  # no exec span without a lease

    def test_retry_resets_queue_wait(self):
        records = [
            _rec("sweep_submitted", 0.0, sweep="s1", total=1),
            _rec("job_start", 0.1, job="boom", stage="svc", key="k" * 64,
                 worker="w1", attempt=1),
            _rec("job_retry", 1.1, job="boom", stage="svc", key="k" * 64,
                 worker="w1", attempt=1, error="RuntimeError"),
            _rec("job_start", 3.1, job="boom", stage="svc", key="k" * 64,
                 worker="w2", attempt=2),
            _rec("job_finish", 4.1, job="boom", stage="svc", key="k" * 64,
                 worker="w2", cached=False, wall_time=1.0, attempt=2),
        ]
        events = sweep_span_events(records)
        queue_spans = [s for s in _spans(events) if s["tid"] == 0]
        assert len(queue_spans) == 2
        # Second wait measures from the retry (t=1.1), not the submit.
        second = max(queue_spans, key=lambda s: s["ts"])
        assert abs(second["ts"] - 1.1e6) < 1.0
        assert abs(second["dur"] - 2.0e6) < 1.0

    def test_expired_lease_closes_span_and_requeues(self):
        records = [
            _rec("sweep_submitted", 0.0, sweep="s1", total=1),
            _rec("job_start", 0.1, job="slow", stage="svc", key="k" * 64,
                 worker="dead", attempt=1),
            _rec("job_requeued", 5.1, job="slow", stage="svc", key="k" * 64,
                 worker="dead", reason="lease expired"),
            _rec("job_start", 5.2, job="slow", stage="svc", key="k" * 64,
                 worker="alive", attempt=2),
            _rec("job_finish", 6.2, job="slow", stage="svc", key="k" * 64,
                 worker="alive", cached=False, wall_time=1.0, attempt=2),
        ]
        events = sweep_span_events(records)
        expired = [s for s in _spans(events) if s.get("cat") == "expired"]
        assert len(expired) == 1
        assert abs(expired[0]["dur"] - 5.0e6) < 1.0
        names = _thread_names(events)
        assert "worker dead" in names.values()
        assert "worker alive" in names.values()

    def test_failed_job_is_failure_span(self):
        records = [
            _rec("sweep_submitted", 0.0, sweep="s1", total=1),
            _rec("job_start", 0.1, job="boom", stage="svc", key="k" * 64,
                 worker="w1", attempt=3),
            _rec("job_failed", 0.6, job="boom", stage="svc", key="k" * 64,
                 worker="w1", attempts=3, error="RuntimeError('x')"),
        ]
        events = sweep_span_events(records)
        failures = [s for s in _spans(events) if s.get("cat") == "failure"]
        assert len(failures) == 1
        assert failures[0]["name"].startswith("FAILED")
        assert failures[0]["args"]["error"] == "RuntimeError('x')"

    def test_empty_log_and_validity(self):
        assert sweep_span_events([]) == []
        records = [
            _rec("sweep_submitted", 0.0, sweep="s1", total=1),
            _rec("job_start", 0.1, job="a", stage="svc", key="k" * 64,
                 worker="w1", attempt=1),
            _rec("job_finish", 0.2, job="a", stage="svc", key="k" * 64,
                 worker="w1", cached=False, wall_time=0.1, attempt=1),
        ]
        payload = chrome_trace(sweep_span_events(records))
        assert validate_chrome_trace(payload) == []
