"""Smoke tests: every example script runs to completion.

Examples are the quickstart surface of the library; they must never rot.
Each runs in a subprocess exactly as a user would invoke it (small
scales where the script accepts one, to keep the suite fast).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", ["li"]),
    ("paper_figure3.py", []),
    ("custom_workload.py", []),
    ("predictor_playground.py", []),
    ("asm_pipeline.py", []),
    ("sweep_issue_width.py", ["0.15"]),
    ("regions_study.py", ["0.5"]),
    # "{tmp}" expands to the test's temporary directory (for output files).
    ("trace_export.py", ["{tmp}/example.trace.json"]),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args, tmp_path):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path), *[a.format(tmp=tmp_path) for a in args]],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script} produced no output"


def test_every_example_file_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {script for script, _ in CASES}
    assert scripts == covered, f"uncovered examples: {scripts - covered}"
