"""The trace stage as a first-class runner job: keys, sharing, replay."""

import dataclasses

import pytest

from repro.core.speculation import SpeculationConfig
from repro.evaluation.experiment import Evaluation, EvaluationSettings
from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W
from repro.runner import (
    DiskCache,
    JobGraph,
    Runner,
    default_deps,
    profile_spec,
    simulate_job,
    simulate_spec,
    trace_spec,
)
from repro.trace import NO_TRACE_ENV, ValueTrace


@pytest.fixture(autouse=True)
def trace_stage_enabled(monkeypatch):
    # The whole file is about the trace stage; pin the gate open so an
    # ambient REPRO_NO_TRACE (the no-trace CI leg) can't remove it.
    # test_no_trace_env_removes_the_stage re-sets it explicitly.
    monkeypatch.delenv(NO_TRACE_ENV, raising=False)


class TestTraceSpec:
    def test_trace_key_ignores_machine_and_config(self):
        """One trace serves every sweep point: simulate specs differing
        only in machine/threshold share a single trace dependency."""
        sweep = [
            simulate_spec("li", PLAYDOH_4W, scale=0.5),
            simulate_spec("li", PLAYDOH_8W, scale=0.5),
            simulate_spec(
                "li", PLAYDOH_4W, scale=0.5,
                spec_config=SpeculationConfig(threshold=0.9),
            ),
            simulate_spec("li", PLAYDOH_4W, scale=0.5, model_icache=True),
        ]
        trace_keys = {
            dep.key()
            for spec in sweep
            for dep in default_deps(spec)
            if dep.stage == "trace"
        }
        assert len(trace_keys) == 1

    def test_trace_key_varies_with_benchmark_and_scale(self):
        assert trace_spec("li", 0.5).key() != trace_spec("swim", 0.5).key()
        assert trace_spec("li", 0.5).key() != trace_spec("li", 1.0).key()

    def test_profile_and_simulate_depend_on_trace(self, monkeypatch):
        monkeypatch.delenv(NO_TRACE_ENV, raising=False)
        for spec in (
            profile_spec("li", 0.5),
            simulate_spec("li", PLAYDOH_4W, scale=0.5),
        ):
            stages = [dep.stage for dep in default_deps(spec)]
            assert "trace" in stages

    def test_no_trace_env_removes_the_stage(self, monkeypatch):
        monkeypatch.setenv(NO_TRACE_ENV, "1")
        for spec in (
            profile_spec("li", 0.5),
            simulate_spec("li", PLAYDOH_4W, scale=0.5),
        ):
            stages = [dep.stage for dep in default_deps(spec)]
            assert "trace" not in stages


class TestTraceExecution:
    def test_sweep_executes_one_trace_job(self, tmp_path):
        """A two-machine, two-threshold sweep interprets each benchmark
        once: 1 build + 1 trace, then replays everywhere downstream."""
        jobs = [
            simulate_job(
                "compress", machine, scale=0.2,
                spec_config=SpeculationConfig(threshold=threshold),
            )
            for machine in (PLAYDOH_4W, PLAYDOH_8W)
            for threshold in (0.5, 0.8)
        ]
        graph = JobGraph(jobs)
        by_stage = {}
        for job in graph.jobs:
            by_stage.setdefault(job.spec.stage, []).append(job)
        assert len(by_stage["trace"]) == 1
        assert len(by_stage["simulate"]) == 4

        with Runner(jobs=1, cache=DiskCache(root=tmp_path / "cache")) as runner:
            results = runner.run(graph.jobs)
        trace_job_ = by_stage["trace"][0]
        trace = results[trace_job_.key()]
        assert isinstance(trace, ValueTrace)
        assert trace.program_name == "compress"
        assert trace.dynamic_operations > 0

    def test_runner_results_match_runnerless(self, tmp_path, monkeypatch):
        """Simulation through the runner (trace-replayed, disk-cached)
        equals direct live simulation with tracing disabled."""
        settings = EvaluationSettings(scale=0.2).with_benchmarks(["swim"])
        with Runner(jobs=1, cache=DiskCache(root=tmp_path / "cache")) as runner:
            via_runner = Evaluation(settings, runner=runner).simulation(
                "swim", PLAYDOH_4W
            )
        monkeypatch.setenv(NO_TRACE_ENV, "1")
        direct = Evaluation(settings).simulation("swim", PLAYDOH_4W)
        assert dataclasses.asdict(via_runner) == dataclasses.asdict(direct)

    def test_trace_result_is_served_from_disk_cache(self, tmp_path):
        cache_root = tmp_path / "cache"
        settings = EvaluationSettings(scale=0.2).with_benchmarks(["li"])
        for _ in range(2):
            with Runner(jobs=1, cache=DiskCache(root=cache_root)) as runner:
                Evaluation(settings, runner=runner).simulation(
                    "li", PLAYDOH_4W
                )
        stats = DiskCache(root=cache_root).stats()
        assert stats.by_stage.get("trace") == 1
        assert stats.bytes_by_stage.get("trace", 0) > 0
