"""Job-key semantics, the disk cache, and the job graph."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.speculation import SpeculationConfig
from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W
from repro.runner import (
    CycleError,
    DiskCache,
    Job,
    JobGraph,
    JobSpec,
    build_spec,
    compile_spec,
    pipeline_jobs,
    profile_spec,
    simulate_job,
    simulate_spec,
)
from repro.runner import jobs as jobs_module


class TestJobKeys:
    def test_identical_settings_hit_the_same_key(self):
        a = simulate_spec("swim", PLAYDOH_4W, scale=0.5)
        b = simulate_spec("swim", PLAYDOH_4W, scale=0.5)
        assert a == b
        assert a.key() == b.key()

    def test_key_is_stable_not_process_salted(self):
        # sha256 of canonical content, so the key must equal a
        # recomputation from an equal-but-distinct spec object; Python's
        # per-process hash randomisation must not leak in.
        spec = compile_spec("li", PLAYDOH_4W, scale=1.0)
        clone = compile_spec("li", PLAYDOH_4W, scale=1.0)
        assert spec.key() == clone.key()
        assert len(spec.key()) == 64
        int(spec.key(), 16)  # hex digest

    def test_threshold_change_misses_compile_but_not_profile(self):
        base = SpeculationConfig()
        tuned = dataclasses.replace(base, threshold=0.9)
        assert (
            compile_spec("li", PLAYDOH_4W, spec_config=base).key()
            != compile_spec("li", PLAYDOH_4W, spec_config=tuned).key()
        )
        # Profiles are config-independent: threshold sweeps share them.
        assert profile_spec("li").key() == profile_spec("li").key()
        assert "spec_config" not in [n for n, _ in profile_spec("li").params]

    @pytest.mark.parametrize(
        "variant",
        [
            simulate_spec("li", PLAYDOH_4W, scale=0.5),
            simulate_spec("li", PLAYDOH_8W, scale=1.0),
            simulate_spec("li", PLAYDOH_4W, scale=1.0, model_icache=True),
            simulate_spec("swim", PLAYDOH_4W, scale=1.0),
            compile_spec("li", PLAYDOH_4W, scale=1.0),
        ],
    )
    def test_any_changed_knob_misses(self, variant):
        reference = simulate_spec("li", PLAYDOH_4W, scale=1.0)
        assert variant.key() != reference.key()

    def test_code_version_salts_every_key(self, monkeypatch):
        spec = profile_spec("compress")
        before = spec.key()
        monkeypatch.setattr(jobs_module, "CODE_VERSION", "test-bump")
        assert spec.key() != before

    def test_job_id_is_human_readable(self):
        spec = simulate_spec("swim", PLAYDOH_4W, model_icache=True)
        assert spec.job_id == "simulate:swim@playdoh-4w[model_icache]"
        assert profile_spec("li").job_id == "profile:li"


class TestJobGraph:
    def test_simulate_job_pulls_its_whole_ancestry(self):
        from repro.trace import replay_enabled

        graph = JobGraph([simulate_job("li", PLAYDOH_4W, scale=0.5)])
        stages = sorted(job.spec.stage for job in graph.jobs)
        if replay_enabled():
            expected_stages = [
                "build", "compile", "profile", "simulate", "trace",
            ]
            expected_order = [
                ["build"], ["trace"], ["profile"], ["compile"], ["simulate"]
            ]
        else:
            expected_stages = ["build", "compile", "profile", "simulate"]
            expected_order = [
                ["build"], ["profile"], ["compile"], ["simulate"]
            ]
        assert stages == expected_stages
        waves = graph.waves()
        order = [sorted(j.spec.stage for j in wave) for wave in waves]
        assert order == expected_order

    def test_graph_deduplicates_by_content(self):
        from repro.trace import replay_enabled

        jobs = pipeline_jobs(
            ["li", "swim"], [PLAYDOH_4W, PLAYDOH_8W], scale=0.5
        )
        graph = JobGraph(jobs)
        # 2 builds + 2 profiles + 4 compiles + 4 simulates, plus (with
        # replay enabled) 2 traces: the trace job is machine-free, so
        # both machines (and all four simulates) share one per benchmark.
        expected = 14 if replay_enabled() else 12
        assert len(graph) == expected
        graph.add(simulate_job("li", PLAYDOH_4W, scale=0.5))
        assert len(graph) == expected

    def test_every_wave_depends_only_on_earlier_waves(self):
        graph = JobGraph(pipeline_jobs(["li"], [PLAYDOH_4W], scale=0.5))
        seen = set()
        for wave in graph.waves():
            for job in wave:
                assert all(dep.key() in seen for dep in job.deps)
            seen.update(job.key() for job in wave)

    def test_cycles_are_reported(self):
        a = JobSpec("flaky-a", "x")
        b = JobSpec("flaky-b", "x")
        graph = JobGraph()
        graph.add(Job(a, deps=(b,)))
        graph.add(Job(b, deps=(a,)))
        with pytest.raises(CycleError):
            graph.waves()


class TestDiskCache:
    def test_round_trip_and_manifest(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        cache.put("ab" * 32, {"answer": 42}, manifest={"stage": "simulate"})
        hit, value = cache.get("ab" * 32)
        assert hit and value == {"answer": 42}
        sidecars = list(cache.store.glob("*/*.json"))
        assert len(sidecars) == 1
        manifest = json.loads(sidecars[0].read_text())
        assert manifest["stage"] == "simulate"
        assert manifest["key"] == "ab" * 32
        assert manifest["size_bytes"] > 0

    def test_miss_on_unknown_key(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        hit, value = cache.get("cd" * 32)
        assert not hit and value is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss_and_evicted(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        cache.put("ef" * 32, [1, 2, 3])
        pkl, _ = cache._paths("ef" * 32)
        pkl.write_bytes(b"not a pickle")
        hit, _ = cache.get("ef" * 32)
        assert not hit
        assert not pkl.exists()

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = DiskCache(root=tmp_path, enabled=False)
        cache.put("12" * 32, "value")
        assert cache.get("12" * 32) == (False, None)
        assert not (tmp_path / "v1").exists()

    def test_stats_and_clear(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        cache.put("11" * 32, "a", manifest={"stage": "profile"})
        cache.put("22" * 32, "b", manifest={"stage": "simulate"})
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.by_stage == {"profile": 1, "simulate": 1}
        assert stats.total_bytes > 0
        assert "2" in stats.render()
        assert cache.clear() == 2
        assert cache.stats().entries == 0


class TestOperationIdAdoption:
    """A cached program's op ids must survive in-process stage interleaving.

    ``build`` resets the global op-id counter; if a *small* benchmark
    builds in-process and a *large* benchmark's compile is then served
    its program from the cache, the counter sits below the program's max
    id and the speculation pass would mint colliding LDPRED/check ids.
    ``adopt_program`` in the compile stage prevents exactly that.
    """

    def test_ensure_operation_ids_above_bumps_the_counter(self):
        from repro.ir.operation import (
            Opcode,
            Operation,
            Reg,
            ensure_operation_ids_above,
            reset_operation_ids,
        )

        reset_operation_ids()
        first = Operation(opcode=Opcode.HALT)
        assert first.op_id == 1
        ensure_operation_ids_above(100)
        assert Operation(opcode=Opcode.HALT).op_id == 101
        # Already past the floor: must not move backwards.
        ensure_operation_ids_above(50)
        assert Operation(opcode=Opcode.HALT).op_id > 101

    def test_compile_of_cached_program_after_smaller_build(self, tmp_path):
        from repro.machine import PLAYDOH_8W
        from repro.runner import (
            DiskCache,
            Runner,
            build_job,
            compile_job,
            profile_job,
        )

        scale = 0.15
        big, small = "li", "hydro2d"  # most / fewest static operations
        cache_root = tmp_path / "cache"
        with Runner(jobs=1, cache=DiskCache(root=cache_root)) as warmup:
            warmup.run_job(profile_job(big, scale=scale))

        with Runner(jobs=1, cache=DiskCache(root=cache_root)) as runner:
            # In-process build of the small benchmark resets the op-id
            # counter to just past its (few) operations...
            runner.run_job(build_job(small, scale=scale))
            # ...and the big benchmark's compile must still be safe even
            # though its program arrives from the cache with higher ids.
            compilation = runner.run_job(
                compile_job(big, PLAYDOH_8W, scale=scale)
            )
        program_ids = {
            op.op_id
            for function in compilation.program
            for block in function
            for op in block.operations
        }
        minted = set()
        for label in compilation.speculated_labels:
            spec_block = compilation.block(label).spec_schedule.spec
            minted.update(spec_block.ldpred_ids)
            minted.update(spec_block.check_of.values())
        assert minted, f"{big} speculated nothing at scale {scale}"
        # The LDPRED/check ops were created *after* the cached program was
        # adopted, so their ids must not collide with any program op id.
        assert minted.isdisjoint(program_ids)
