"""Tests of the runner event log: JSONL hygiene, helpers, rendering."""

import io
import json

from repro.runner.events import (
    EventLog,
    ProgressRenderer,
    executed_jobs,
    last_run_id,
    read_events,
)


class TestEventLogFile:
    def test_rerun_truncates_previous_records(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path=path) as log:
            log.emit("run_start", total_jobs=1, jobs=1)
            log.emit("run_finish", executed=1)
        with EventLog(path=path) as log:
            log.emit("run_start", total_jobs=2, jobs=1)
        records = read_events(path)
        # Only the second run's single record survives — no interleaving.
        assert len(records) == 1
        assert records[0]["total_jobs"] == 2

    def test_every_record_carries_the_run_id(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path=path) as log:
            log.emit("run_start", total_jobs=1, jobs=1)
            log.emit("job_finish", job="a", stage="s", key="k", cached=False,
                     wall_time=0.1, attempt=1)
            rid = log.run_id
        assert {e["run_id"] for e in read_events(path)} == {rid}

    def test_distinct_logs_get_distinct_run_ids(self):
        assert EventLog().run_id != EventLog().run_id

    def test_read_events_filters_by_run_id(self, tmp_path):
        path = tmp_path / "multi.jsonl"
        records = [
            {"ts": 0.0, "run_id": "aaa", "event": "run_start"},
            {"ts": 0.1, "run_id": "bbb", "event": "run_start"},
            {"ts": 0.2, "run_id": "bbb", "event": "run_finish"},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        assert len(read_events(str(path))) == 3
        assert len(read_events(str(path), run_id="bbb")) == 2
        assert read_events(str(path), run_id="zzz") == []

    def test_read_events_skips_blank_and_truncated_lines(self, tmp_path):
        path = tmp_path / "dirty.jsonl"
        path.write_text(
            json.dumps({"ts": 0.0, "event": "run_start"}) + "\n"
            + "\n"
            + "   \n"
            + '{"ts": 0.5, "event": "job_fin'  # truncated mid-write
        )
        records = read_events(str(path))
        assert len(records) == 1
        assert records[0]["event"] == "run_start"

    def test_last_run_id(self):
        assert last_run_id([]) is None
        assert last_run_id([{"event": "x"}]) is None
        assert last_run_id(
            [{"run_id": "a"}, {"event": "x"}, {"run_id": "b"}]
        ) == "b"


class TestExecutedJobs:
    def _events(self):
        return [
            {"event": "job_finish", "job": "profile:li", "stage": "profile",
             "cached": False, "run_id": "r1"},
            {"event": "job_finish", "job": "simulate:li", "stage": "simulate",
             "cached": False, "run_id": "r1"},
            {"event": "job_finish", "job": "simulate:swim", "stage": "simulate",
             "cached": True, "run_id": "r1"},
            {"event": "job_finish", "job": "simulate:swim", "stage": "simulate",
             "cached": False, "run_id": "r2"},
            {"event": "job_start", "job": "simulate:li", "stage": "simulate"},
        ]

    def test_excludes_cache_hits_and_non_finishes(self):
        jobs = executed_jobs(self._events())
        assert [e["job"] for e in jobs] == [
            "profile:li", "simulate:li", "simulate:swim"
        ]

    def test_stage_filter(self):
        jobs = executed_jobs(self._events(), stage="simulate")
        assert [e["job"] for e in jobs] == ["simulate:li", "simulate:swim"]
        assert executed_jobs(self._events(), stage="compile") == []

    def test_run_id_filter(self):
        jobs = executed_jobs(self._events(), stage="simulate", run_id="r1")
        assert [e["job"] for e in jobs] == ["simulate:li"]


class TestSummary:
    def test_summary_counts(self):
        log = EventLog()
        log.emit("run_start", total_jobs=4, jobs=1)
        log.emit("cache_hit", job="a", stage="profile", key="k1")
        log.emit("cache_miss", job="b", stage="profile", key="k2")
        log.emit("job_finish", job="a", stage="profile", key="k1", cached=True,
                 wall_time=0.0, attempt=1)
        log.emit("job_finish", job="b", stage="profile", key="k2", cached=False,
                 wall_time=0.2, attempt=1)
        log.emit("job_finish", job="c", stage="simulate", key="k3", cached=False,
                 wall_time=0.3, attempt=2)
        log.emit("job_retry", job="c", stage="simulate", key="k3", attempt=1,
                 error="x", backoff=0.1)
        log.emit("job_failed", job="d", stage="simulate", key="k4", attempts=3,
                 error="y")
        assert log.summary() == {
            "executed": 2,
            "executed_by_stage": {"profile": 1, "simulate": 1},
            "cache_hits": 1,
            "cache_misses": 1,
            "retries": 1,
            "failures": 1,
        }

    def test_of_type(self):
        log = EventLog()
        log.emit("cache_hit", job="a", stage="s", key="k")
        log.emit("cache_miss", job="b", stage="s", key="k")
        assert [e["job"] for e in log.of_type("cache_hit")] == ["a"]


class TestProgressRenderer:
    def _render(self, *emits):
        stream = io.StringIO()
        log = EventLog(renderer=ProgressRenderer(stream=stream))
        for event, fields in emits:
            log.emit(event, **fields)
        return stream.getvalue()

    def test_job_failed_rendered(self):
        text = self._render(
            ("job_failed", dict(job="simulate:li", stage="simulate", key="k",
                                attempts=3, error="worker died")),
        )
        assert "FAILED" in text
        assert "simulate:li" in text
        assert "3 attempt(s)" in text
        assert "worker died" in text

    def test_progress_counts(self):
        text = self._render(
            ("run_start", dict(total_jobs=2, jobs=1)),
            ("job_finish", dict(job="a", stage="s", key="k", cached=True,
                                wall_time=0.0, attempt=1)),
            ("job_finish", dict(job="b", stage="s", key="k", cached=False,
                                wall_time=0.25, attempt=1)),
        )
        assert "[1/2] a (cached)" in text
        assert "[2/2] b (0.25s)" in text


class TestChromeTrace:
    def test_event_log_exports_spans(self):
        log = EventLog()
        log.emit("job_start", job="profile:li", stage="profile", key="k",
                 attempt=1)
        log.emit("job_finish", job="profile:li", stage="profile", key="k",
                 cached=False, wall_time=0.1, attempt=1)
        payload = log.chrome_trace()
        assert any(
            e.get("name") == "profile:li" and e.get("ph") == "X"
            for e in payload["traceEvents"]
        )
