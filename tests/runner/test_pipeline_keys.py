"""Pipeline-aware job keys: normalisation, distinctness, dep derivation,
and end-to-end execution of a non-standard pipeline through the runner."""

from repro.compiler import PassManager, compilation_digest, standard_pipeline
from repro.ir.operation import reset_operation_ids
from repro.machine.configs import PLAYDOH_4W
from repro.profiling.profile_run import profile_program
from repro.runner import (
    DiskCache,
    Runner,
    build_spec,
    compile_job,
    compile_spec,
    default_deps,
    profile_spec,
)
from repro.workloads.suite import load_benchmark


class TestNormalisation:
    def test_standard_pipeline_shares_keys_with_none(self):
        plain = compile_spec("li", PLAYDOH_4W)
        explicit = compile_spec("li", PLAYDOH_4W, pipeline=standard_pipeline())
        assert explicit.pipeline is None
        assert plain.key() == explicit.key()
        assert plain.job_id == explicit.job_id

    def test_verify_flag_never_splits_caches(self):
        noisy = compile_spec(
            "li", PLAYDOH_4W, pipeline=standard_pipeline(verify=False)
        )
        assert noisy.key() == compile_spec("li", PLAYDOH_4W).key()

    def test_build_and_profile_keep_only_the_frontend(self):
        pipeline = standard_pipeline(unroll=("loop", 2))
        built = build_spec("li", pipeline=pipeline)
        profiled = profile_spec("li", pipeline=pipeline)
        for spec in (built, profiled):
            assert spec.pipeline is not None
            assert [p.name for p in spec.pipeline.program_passes] == ["unroll"]
            assert spec.pipeline.codegen_passes == ()
        # A codegen-only (standard) pipeline is invisible upstream.
        assert build_spec("li", pipeline=standard_pipeline()).pipeline is None
        assert (
            build_spec("li", pipeline=standard_pipeline()).key()
            == build_spec("li").key()
        )


class TestDistinctness:
    def test_unroll_factors_get_distinct_keys(self):
        two = compile_spec(
            "li", PLAYDOH_4W, pipeline=standard_pipeline(unroll=("loop", 2))
        )
        four = compile_spec(
            "li", PLAYDOH_4W, pipeline=standard_pipeline(unroll=("loop", 4))
        )
        plain = compile_spec("li", PLAYDOH_4W)
        assert len({two.key(), four.key(), plain.key()}) == 3

    def test_job_id_names_the_frontend(self):
        spec = compile_spec(
            "li", PLAYDOH_4W, pipeline=standard_pipeline(unroll=("loop", 2))
        )
        assert "+unroll(" in spec.job_id
        assert "label='loop'" in spec.job_id

    def test_deps_inherit_the_pipeline(self):
        spec = compile_spec(
            "li", PLAYDOH_4W, pipeline=standard_pipeline(unroll=("loop", 2))
        )
        deps = {d.stage: d for d in default_deps(spec)}
        assert deps["build"].pipeline is not None
        assert deps["build"].pipeline.program_passes == (
            spec.pipeline.program_passes
        )
        assert deps["profile"].pipeline == deps["build"].pipeline
        # Standard compiles depend on pipeline-free builds.
        plain_deps = {d.stage: d for d in default_deps(compile_spec("li", PLAYDOH_4W))}
        assert plain_deps["build"].pipeline is None


class TestEndToEnd:
    def _loop_label(self, program):
        from repro.regions.unroll import UnrollError, unroll_program_loop

        for block in program.main:
            if block.terminator and block.label in block.terminator.targets:
                try:
                    unroll_program_loop(program, block.label, 2)
                except UnrollError:
                    continue
                return block.label
        raise AssertionError("no unrollable self-loop")

    def test_runner_compiles_unroll_variant_like_inline(self):
        reset_operation_ids()
        label = self._loop_label(load_benchmark("li", scale=0.25))
        pipeline = standard_pipeline(unroll=(label, 2))

        runner = Runner(jobs=1, cache=DiskCache(enabled=False))
        try:
            via_runner = runner.run_job(
                compile_job("li", PLAYDOH_4W, scale=0.25, pipeline=pipeline)
            )
        finally:
            runner.close()

        reset_operation_ids()
        manager = PassManager(pipeline)
        program = manager.run_program_passes(load_benchmark("li", scale=0.25))
        inline = manager.compile(program, PLAYDOH_4W, profile_program(program))

        assert compilation_digest(via_runner) == compilation_digest(inline)
        assert via_runner.speculated_labels == inline.speculated_labels
