"""DiskCache under concurrent writers, readers, and clears.

The contract under test (``DiskCache._atomic_write``): concurrent
writers racing on one key win-or-noop — readers observe either a miss or
one complete entry, never a torn file — and a ``clear()`` yanking shard
directories out from under in-flight writes must not raise or corrupt.
"""

from __future__ import annotations

import hashlib
import threading

from repro.runner.cache import DiskCache


def _key(seed: str) -> str:
    return hashlib.sha256(seed.encode()).hexdigest()


def _hammer(threads_fn, count: int) -> list:
    errors: list = []

    def wrap(fn):
        def run() -> None:
            try:
                fn()
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        return run

    threads = [
        threading.Thread(target=wrap(threads_fn(n))) for n in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


class TestConcurrentWriters:
    def test_many_writers_one_key(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        key = _key("contended")
        # Same key ⇒ by construction the same content; any writer's
        # payload is an acceptable final state.
        value = {"benchmark": "li", "cycles": 424242, "pad": list(range(500))}

        def writer(n: int):
            def body() -> None:
                for _ in range(30):
                    cache.put(key, value, manifest={"stage": "simulate"})
                    hit, got = cache.get(key)
                    assert hit and got == value

            return body

        assert _hammer(writer, 8) == []
        assert cache.get(key) == (True, value)
        assert cache.stats().entries == 1
        # No stranded temporary files from lost races.
        assert not list(cache.store.glob("*/*.tmp"))

    def test_writers_on_distinct_keys(self, tmp_path):
        cache = DiskCache(root=tmp_path)

        def writer(n: int):
            def body() -> None:
                for i in range(20):
                    key = _key(f"{n}-{i}")
                    cache.put(key, (n, i), manifest={"stage": "test"})
                    assert cache.get(key) == (True, (n, i))

            return body

        assert _hammer(writer, 6) == []
        assert cache.stats().entries == 6 * 20

    def test_writers_survive_a_concurrent_clear(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        stop = threading.Event()

        def actor(n: int):
            if n == 0:
                def clearer() -> None:
                    while not stop.is_set():
                        cache.clear()

                return clearer

            def writer() -> None:
                try:
                    for i in range(60):
                        key = _key(f"{n}-{i}")
                        cache.put(key, i, manifest={"stage": "test"})
                        hit, value = cache.get(key)
                        # A racing clear may have taken the entry; a hit
                        # must still decode to exactly what was written.
                        assert not hit or value == i
                finally:
                    if n == 1:
                        stop.set()

            return writer

        assert _hammer(actor, 5) == []
        # The cache is still fully functional afterwards.
        cache.put(_key("after"), "alive")
        assert cache.get(_key("after")) == (True, "alive")

    def test_readers_never_see_a_torn_entry(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        key = _key("torn")
        # Two self-consistent payloads; a torn read would decode to
        # neither (or fail to decode, which get() must treat as a miss).
        payloads = [
            {"version": 0, "blob": b"a" * 4096},
            {"version": 1, "blob": b"b" * 4096},
        ]
        stop = threading.Event()

        def actor(n: int):
            if n < 2:
                def writer() -> None:
                    for _ in range(50):
                        cache.put(key, payloads[n], manifest={"stage": "test"})
                    stop.set()

                return writer

            def reader() -> None:
                while not stop.is_set():
                    hit, value = cache.get(key)
                    if hit:
                        assert value in payloads

            return reader

        assert _hammer(actor, 5) == []

    def test_evict_racing_put_leaves_no_partial_state(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        key = _key("churn")

        def actor(n: int):
            if n % 2 == 0:
                def putter() -> None:
                    for _ in range(50):
                        cache.put(key, "value", manifest={"stage": "test"})

                return putter

            def evicter() -> None:
                for _ in range(50):
                    cache.evict(key)

            return evicter

        assert _hammer(actor, 4) == []
        hit, value = cache.get(key)
        assert not hit or value == "value"
