"""Job keys must separate machines by content, not by Python identity."""

from __future__ import annotations

from repro.machine.configs import PLAYDOH_4W, PLAYDOH_4W_SPEC
from repro.machine.spec import MachineSpec
from repro.runner.jobs import compile_job, simulate_job


class TestMachineJobKeys:
    def test_equal_machines_share_keys(self):
        rebuilt = MachineSpec.from_description(PLAYDOH_4W).build()
        assert rebuilt is not PLAYDOH_4W
        assert (
            simulate_job("li", rebuilt, scale=0.5).key()
            == simulate_job("li", PLAYDOH_4W, scale=0.5).key()
        )

    def test_each_machine_axis_moves_the_key(self):
        base_key = simulate_job("li", PLAYDOH_4W, scale=0.5).key()
        variants = [
            PLAYDOH_4W_SPEC.override(issue_width=5),
            PLAYDOH_4W_SPEC.with_units(mem=2),
            PLAYDOH_4W_SPEC.override(ccb_capacity=8),
            PLAYDOH_4W_SPEC.override(ovb_capacity=8),
            PLAYDOH_4W_SPEC.override(sync_width=32),
            PLAYDOH_4W_SPEC.override(branch_penalty=3),
        ]
        keys = {
            simulate_job("li", spec.build(), scale=0.5).key()
            for spec in variants
        }
        assert len(keys) == len(variants)
        assert base_key not in keys

    def test_predictor_geometry_moves_the_key(self):
        from repro.machine.predictor import PredictorSpec

        bounded = PLAYDOH_4W_SPEC.override(
            predictor=PredictorSpec(table_entries=256)
        ).build()
        assert (
            compile_job("li", bounded, scale=0.5).key()
            != compile_job("li", PLAYDOH_4W, scale=0.5).key()
        )

    def test_rename_alone_moves_the_key(self):
        # machine_name lands in simulation results, so a renamed machine
        # must not alias the original's cache entries.
        renamed = PLAYDOH_4W_SPEC.override(name="other").build()
        assert (
            simulate_job("li", renamed, scale=0.5).key()
            != simulate_job("li", PLAYDOH_4W, scale=0.5).key()
        )
