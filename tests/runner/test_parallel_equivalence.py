"""Equivalence and warm-cache guarantees of the runner-backed Evaluation.

The contract the CLI advertises: ``--jobs 1``, ``--jobs N`` and a
warm-cache rerun produce byte-identical JSON rows, and the warm rerun
executes zero pipeline jobs (verified via the events log).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.evaluation import table2, table3
from repro.evaluation.experiment import Evaluation, EvaluationSettings
from repro.runner import (
    DiskCache,
    EventLog,
    Runner,
    executed_jobs,
    read_events,
)

SCALE = 0.2
SETTINGS = EvaluationSettings(scale=SCALE)


def _rows_json(evaluation: Evaluation) -> str:
    return json.dumps(
        [dataclasses.asdict(row) for row in table2.compute(evaluation)],
        indent=2,
    )


@pytest.fixture(scope="module")
def serial_rows() -> str:
    """Ground truth: the original in-process pipeline, no runner at all."""
    return _rows_json(Evaluation(SETTINGS))


class TestParallelEquivalence:
    def test_parallel_rows_are_byte_identical_to_serial(
        self, tmp_path, serial_rows
    ):
        runner = Runner(jobs=2, cache=DiskCache(root=tmp_path / "cache"))
        with runner:
            evaluation = Evaluation(SETTINGS, runner=runner)
            evaluation.warm(["table2"])
            assert _rows_json(evaluation) == serial_rows

    def test_serial_runner_rows_are_byte_identical_to_serial(
        self, tmp_path, serial_rows
    ):
        runner = Runner(jobs=1, cache=DiskCache(root=tmp_path / "cache"))
        with runner:
            evaluation = Evaluation(SETTINGS, runner=runner)
            evaluation.warm(["table2"])
            assert _rows_json(evaluation) == serial_rows

    def test_warm_cache_rerun_is_identical_and_executes_nothing(
        self, tmp_path, serial_rows
    ):
        cache_root = tmp_path / "cache"
        events_path = tmp_path / "warm-events.jsonl"
        with Runner(jobs=2, cache=DiskCache(root=cache_root)) as cold:
            Evaluation(SETTINGS, runner=cold).warm(["table2"])
        assert cold.events.executed > 0

        warm_runner = Runner(
            jobs=2,
            cache=DiskCache(root=cache_root),
            events=EventLog(path=str(events_path)),
        )
        with warm_runner:
            warm = Evaluation(SETTINGS, runner=warm_runner)
            warm.warm(["table2"])
            assert _rows_json(warm) == serial_rows
        warm_runner.events.close()

        events = read_events(str(events_path))
        for stage in ("build", "profile", "compile", "simulate"):
            assert executed_jobs(events, stage) == []
        assert warm_runner.events.cache_hits > 0

    def test_compilations_survive_the_pickle_round_trip(self, tmp_path):
        """Table 3 reads compilations produced in workers; the unpickled
        objects must rebuild their memoised timings on demand."""
        plain = json.dumps(
            [dataclasses.asdict(r) for r in table3.compute(Evaluation(SETTINGS))]
        )
        runner = Runner(jobs=2, cache=DiskCache(root=tmp_path / "cache"))
        with runner:
            evaluation = Evaluation(SETTINGS, runner=runner)
            evaluation.warm(["table3"])
            via_runner = json.dumps(
                [dataclasses.asdict(r) for r in table3.compute(evaluation)]
            )
        assert via_runner == plain


class TestEvaluationRunnerDelegation:
    def test_unwarmed_access_still_works_through_the_runner(self, tmp_path):
        """Stage accessors fall through to run_job on cold caches."""
        runner = Runner(jobs=1, cache=DiskCache(root=tmp_path / "cache"))
        with runner:
            evaluation = Evaluation(SETTINGS, runner=runner)
            sim = evaluation.simulation("compress", evaluation.machine_4w)
            assert sim.cycles_proposed > 0
            # Every ancestor stage executed exactly once (the trace
            # stage joins the graph unless REPRO_NO_TRACE removed it).
            from repro.trace import replay_enabled

            assert runner.events.executed == (5 if replay_enabled() else 4)

    def test_benchmark_filter_narrows_the_job_graph(self, tmp_path):
        settings = SETTINGS.with_benchmarks(["li", "swim"])
        runner = Runner(jobs=1, cache=DiskCache(root=tmp_path / "cache"))
        with runner:
            evaluation = Evaluation(settings, runner=runner)
            jobs = evaluation.required_jobs(["table2"])
            assert sorted(j.spec.benchmark for j in jobs) == ["li", "swim"]
            rows = table2.compute(evaluation)
        assert [r.benchmark for r in rows] == ["li", "swim"]
