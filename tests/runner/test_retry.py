"""RetryPolicy: growth, ceiling, jitter determinism."""

from __future__ import annotations

import time

from repro.runner.retry import RECONNECT_POLICY, RetryPolicy


class TestRetryPolicy:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base=0.1, factor=2.0, jitter=0.0)
        assert list(policy.delays(4)) == [0.1, 0.2, 0.4, 0.8]

    def test_max_delay_caps_the_curve(self):
        policy = RetryPolicy(base=1.0, factor=10.0, jitter=0.0, max_delay=5.0)
        assert list(policy.delays(3)) == [1.0, 5.0, 5.0]

    def test_jitter_stays_within_the_declared_fraction(self):
        policy = RetryPolicy(base=0.1, factor=2.0, jitter=0.5)
        for attempt in range(1, 6):
            raw = 0.1 * 2 ** (attempt - 1)
            for token in ("job-a", "job-b", "job-c"):
                delay = policy.delay(attempt, token=token)
                assert raw <= delay <= raw * 1.5

    def test_jitter_is_deterministic_per_token_and_attempt(self):
        policy = RetryPolicy(base=0.1, jitter=1.0)
        assert policy.delay(3, token="t") == policy.delay(3, token="t")
        assert policy.delay(3, token="t") != policy.delay(3, token="u")
        assert policy.delay(3, token="t") != policy.delay(4, token="t")

    def test_jitter_respects_max_delay(self):
        policy = RetryPolicy(base=4.0, factor=1.0, jitter=1.0, max_delay=5.0)
        for attempt in range(1, 4):
            assert policy.delay(attempt, token="x") <= 5.0

    def test_sleep_returns_the_slept_duration(self):
        policy = RetryPolicy(base=0.01, jitter=0.0)
        t0 = time.monotonic()
        slept = policy.sleep(1, token="s")
        assert slept == 0.01
        assert time.monotonic() - t0 >= 0.01

    def test_reconnect_policy_is_jittered_and_bounded(self):
        # The worker fleet's shared reconnect policy must stagger
        # (jitter > 0) and never exceed its ceiling, so a restarted
        # broker is not stampeded.
        delays = [RECONNECT_POLICY.delay(a, token=f"w{a}") for a in range(1, 12)]
        assert all(d <= RECONNECT_POLICY.max_delay for d in delays)
        assert RECONNECT_POLICY.jitter > 0
