"""Executor fault tolerance: retries, timeouts, pool loss, serial fallback.

Synthetic stages are registered at import time so ``fork``-started
workers inherit them.  Cross-process state (attempt counts) lives in
scratch files addressed through the job's ``params`` — the only channel
that survives the process boundary.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runner import (
    DiskCache,
    EventLog,
    Job,
    JobError,
    JobSpec,
    Runner,
    register_stage,
)


def _bump_counter(path: str) -> int:
    """Append-one attempt counter that is atomic enough for two workers."""
    with open(path, "a") as fh:
        fh.write("x")
    with open(path) as fh:
        return len(fh.read())


def _flaky(spec: JobSpec, deps):
    attempt = _bump_counter(spec.param("counter"))
    if attempt <= spec.param("fail_times", 0):
        raise RuntimeError(f"injected failure #{attempt}")
    return {"benchmark": spec.benchmark, "succeeded_on_attempt": attempt}


def _slow_once(spec: JobSpec, deps):
    attempt = _bump_counter(spec.param("counter"))
    if attempt <= spec.param("slow_times", 0):
        time.sleep(spec.param("sleep", 30.0))
    return {"benchmark": spec.benchmark, "attempt": attempt}


def _die_in_worker(spec: JobSpec, deps):
    if os.getpid() != spec.param("parent_pid"):
        os._exit(1)  # hard-kill the worker: parent sees BrokenProcessPool
    return "survived-serially"


register_stage("flaky", _flaky)
register_stage("slow-once", _slow_once)
register_stage("die-in-worker", _die_in_worker)


def _job(stage: str, benchmark: str = "x", **params) -> Job:
    return Job(JobSpec(stage, benchmark, params=tuple(sorted(params.items()))))


def _runner(tmp_path, **kw) -> Runner:
    kw.setdefault("cache", DiskCache(root=tmp_path / "cache"))
    kw.setdefault("events", EventLog())
    kw.setdefault("backoff", 0.01)
    return Runner(**kw)


class TestRetry:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retry_then_succeed(self, tmp_path, jobs):
        counter = tmp_path / "attempts"
        runner = _runner(tmp_path, jobs=jobs, retries=2)
        with runner:
            result = runner.run_job(
                _job("flaky", counter=str(counter), fail_times=2)
            )
        assert result["succeeded_on_attempt"] == 3
        assert len(runner.events.of_type("job_retry")) == 2
        assert runner.events.failures == 0

    def test_retry_budget_exhausted_raises_job_error(self, tmp_path):
        counter = tmp_path / "attempts"
        runner = _runner(tmp_path, jobs=1, retries=1)
        with runner:
            with pytest.raises(JobError) as excinfo:
                runner.run_job(
                    _job("flaky", counter=str(counter), fail_times=10)
                )
        assert excinfo.value.attempts == 2
        assert len(runner.events.of_type("job_failed")) == 1

    def test_backoff_between_attempts(self, tmp_path):
        counter = tmp_path / "attempts"
        runner = _runner(tmp_path, jobs=1, retries=2, backoff=0.05)
        t0 = time.monotonic()
        with runner:
            runner.run_job(_job("flaky", counter=str(counter), fail_times=2))
        # Two retries: 0.05 + 0.10 seconds of backoff at minimum.
        assert time.monotonic() - t0 >= 0.15
        # Exponential growth with up to +50% deterministic jitter
        # (RetryPolicy default): each delay lands in [base*2^k, 1.5x that].
        delays = [e["backoff"] for e in runner.events.of_type("job_retry")]
        assert len(delays) == 2
        assert 0.05 <= delays[0] <= 0.075
        assert 0.10 <= delays[1] <= 0.15

    def test_retry_delays_are_deterministic_per_job(self, tmp_path):
        # Jitter is seeded by (job key, attempt): the same job retried in
        # two separate runner sessions backs off identically, while two
        # different jobs decorrelate.
        first = _runner(tmp_path, jobs=1, retries=2, backoff=0.01)
        with first:
            first.run_job(
                _job("flaky", counter=str(tmp_path / "a"), fail_times=2)
            )
        second = _runner(tmp_path / "2", jobs=1, retries=2, backoff=0.01)
        with second:
            second.run_job(
                _job("flaky", benchmark="x", counter=str(tmp_path / "b"),
                     fail_times=2)
            )
        # NB: the two jobs differ only in their counter param, so their
        # keys differ and the jitter streams should not coincide.
        first_delays = [e["backoff"] for e in first.events.of_type("job_retry")]
        second_delays = [e["backoff"] for e in second.events.of_type("job_retry")]
        assert len(first_delays) == len(second_delays) == 2
        assert first_delays != second_delays


class TestTimeout:
    def test_timeout_then_succeed_on_fresh_pool(self, tmp_path):
        counter = tmp_path / "attempts"
        runner = _runner(tmp_path, jobs=2, timeout=0.5, retries=2)
        with runner:
            result = runner.run_job(
                _job("slow-once", counter=str(counter), slow_times=1, sleep=30.0)
            )
        assert result["attempt"] >= 2
        retries = runner.events.of_type("job_retry")
        assert retries and "timeout" in retries[0]["error"]

    def test_timeout_budget_exhausted_raises(self, tmp_path):
        counter = tmp_path / "attempts"
        runner = _runner(tmp_path, jobs=2, timeout=0.3, retries=0)
        with runner:
            with pytest.raises(JobError) as excinfo:
                runner.run_job(
                    _job("slow-once", counter=str(counter), slow_times=99, sleep=30.0)
                )
        assert isinstance(excinfo.value.cause, TimeoutError)


class TestSerialFallback:
    def test_pool_creation_failure_degrades_to_serial(self, tmp_path):
        def broken_factory(workers):
            raise OSError("no processes in this sandbox")

        counter = tmp_path / "attempts"
        runner = _runner(tmp_path, jobs=4, pool_factory=broken_factory)
        with runner:
            result = runner.run_job(_job("flaky", counter=str(counter)))
        assert result["succeeded_on_attempt"] == 1
        fallbacks = runner.events.of_type("fallback")
        assert fallbacks and "pool" in fallbacks[0]["reason"]

    def test_worker_death_degrades_to_serial(self, tmp_path):
        runner = _runner(tmp_path, jobs=2, retries=0)
        with runner:
            result = runner.run_job(
                _job("die-in-worker", parent_pid=os.getpid())
            )
        assert result == "survived-serially"
        assert runner.events.of_type("fallback")


class TestCachingThroughTheExecutor:
    def test_second_run_executes_nothing(self, tmp_path):
        counter = tmp_path / "attempts"
        job = _job("flaky", counter=str(counter))
        first = _runner(tmp_path, jobs=1)
        with first:
            first.run([job])
        assert first.events.executed == 1
        second = _runner(tmp_path, jobs=1)
        with second:
            value = second.run([job])[job.key()]
        assert value["succeeded_on_attempt"] == 1
        assert second.events.executed == 0
        assert second.events.cache_hits == 1
        # The stage body really did not run again.
        assert counter.read_text() == "x"

    def test_no_cache_mode_executes_every_time(self, tmp_path):
        counter = tmp_path / "attempts"
        job = _job("flaky", counter=str(counter))
        for expected in (1, 2):
            runner = _runner(
                tmp_path, jobs=1, cache=DiskCache(enabled=False)
            )
            with runner:
                value = runner.run([job])[job.key()]
            assert value["succeeded_on_attempt"] == expected

    def test_in_memory_memo_within_one_runner(self, tmp_path):
        counter = tmp_path / "attempts"
        job = _job("flaky", counter=str(counter))
        runner = _runner(tmp_path, jobs=1, cache=DiskCache(enabled=False))
        with runner:
            runner.run_job(job)
            runner.run_job(job)
        assert counter.read_text() == "x"
