"""Unit tests for memory, block-frequency and value profiling."""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.profiling.block_profile import BlockFrequencyProfiler
from repro.profiling.memory import Memory
from repro.profiling.profile_run import profile_program
from repro.profiling.value_profile import ValueProfiler
from repro.profiling.interpreter import run_program


class TestMemory:
    def test_load_store(self):
        mem = Memory({5: 10})
        assert mem.load(5) == 10
        mem.store(6, 20)
        assert mem.load(6) == 20
        assert mem.reads == 2
        assert mem.writes == 1

    def test_uninitialised_zero(self):
        assert Memory().load(123) == 0

    def test_peek_does_not_count(self):
        mem = Memory({1: 2})
        mem.peek(1)
        assert mem.reads == 0

    def test_snapshot_is_a_copy(self):
        mem = Memory({1: 2})
        snap = mem.snapshot()
        snap[1] = 99
        assert mem.peek(1) == 2

    def test_float_addresses_truncated(self):
        mem = Memory()
        mem.store(7.0, 1)
        assert mem.load(7) == 1


class TestBlockProfile:
    def test_counts_and_frequencies(self, loop_program):
        profiler = BlockFrequencyProfiler()
        run_program(loop_program, observers=[profiler])
        profile = profiler.profile()
        assert profile.count("loop") == 50
        assert profile.count("entry") == 1
        assert profile.count("missing") == 0
        assert profile.total == 52
        assert profile.frequency("loop") == pytest.approx(50 / 52)

    def test_hottest(self, loop_program):
        profiler = BlockFrequencyProfiler()
        run_program(loop_program, observers=[profiler])
        hottest = profiler.profile().hottest(1)
        assert hottest[0][0] == "loop"


class TestValueProfile:
    def build_two_load_program(self):
        pb = ProgramBuilder("p")
        fb = pb.function()
        fb.block("entry")
        fb.mov("i", 0)
        fb.br("loop")
        fb.block("loop")
        fb.add("p1", "i", 100)
        fb.load("a", "p1")        # strided values
        fb.add("p2", "i", 500)
        fb.load("b", "p2")        # repeating pattern
        fb.add("i", "i", 1)
        fb.cmplt("c", "i", 30)
        fb.brcond("c", "loop", "exit")
        fb.block("exit")
        fb.halt()
        pb.add(fb.build())
        pb.memory(100, [7 * k for k in range(30)])
        pb.memory(500, [(9, 4, 2)[k % 3] for k in range(30)])
        return pb.build(), fb

    def test_rates_reflect_stream_character(self):
        program, _ = self.build_two_load_program()
        profiler = ValueProfiler()
        run_program(program, observers=[profiler])
        profile = profiler.profile()
        loads = program.main.block("loop").loads()
        strided, repeating = loads[0], loads[1]
        assert profile.loads[strided.op_id].stride_rate > 0.8
        assert profile.loads[strided.op_id].fcm_rate < 0.2
        assert profile.loads[repeating.op_id].fcm_rate > 0.8
        assert profile.loads[repeating.op_id].stride_rate < 0.2

    def test_best_rate_is_max(self):
        program, _ = self.build_two_load_program()
        data = profile_program(program)
        for stats in data.values.loads.values():
            assert stats.best_rate == max(stats.stride_rate, stats.fcm_rate)

    def test_predictable_loads_thresholding(self):
        program, _ = self.build_two_load_program()
        data = profile_program(program)
        loads = program.main.block("loop").loads()
        predictable = data.values.predictable_loads(0.65)
        assert {l.op_id for l in loads} == set(predictable)
        assert data.values.predictable_loads(1.01) == []

    def test_unknown_load_rate_zero(self):
        program, _ = self.build_two_load_program()
        data = profile_program(program)
        assert data.values.rate(10**9) == 0.0
        assert data.values.executions(10**9) == 0

    def test_profile_data_contains_execution(self):
        program, _ = self.build_two_load_program()
        data = profile_program(program)
        assert data.program_name == "p"
        assert data.execution.halted
        assert data.blocks.count("loop") == 30
        assert len(data.values) == 2
