"""Differential tests: the specialized interpreter vs the legacy loop.

The specialized fast path must be observationally indistinguishable from
the legacy per-op dispatch loop — same results, same observer event
streams, same errors at the same dynamic operation.  The legacy loop is
forced with ``REPRO_SLOW_INTERP=1``.
"""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation, Reg
from repro.profiling.interpreter import (
    ExecutionLimitExceeded,
    Interpreter,
    SLOW_INTERP_ENV,
)
from repro.workloads.suite import load_suite


class EventRecorder:
    """Records the full observer event stream, values included."""

    def __init__(self):
        self.events = []

    def block_entered(self, block):
        self.events.append(("block", block.label))

    def operation_executed(self, op, inputs, result):
        self.events.append(("op", op.op_id, inputs, result))


def run_legacy(monkeypatch, program, observers=None, **kw):
    monkeypatch.setenv(SLOW_INTERP_ENV, "1")
    try:
        return Interpreter(**kw).run(program, observers=observers)
    finally:
        monkeypatch.delenv(SLOW_INTERP_ENV)


def run_fast(monkeypatch, program, observers=None, **kw):
    monkeypatch.delenv(SLOW_INTERP_ENV, raising=False)
    return Interpreter(**kw).run(program, observers=observers)


def assert_results_identical(a, b):
    assert a.program_name == b.program_name
    assert a.dynamic_operations == b.dynamic_operations
    assert a.dynamic_blocks == b.dynamic_blocks
    assert a.registers == b.registers
    assert a.memory.snapshot() == b.memory.snapshot()
    assert a.loads_executed == b.loads_executed
    assert a.stores_executed == b.stores_executed
    assert a.halted == b.halted


SUITE = load_suite(scale=0.25)


@pytest.mark.parametrize("workload", sorted(SUITE))
class TestSuiteDifferential:
    def test_results_and_event_streams_match(self, monkeypatch, workload):
        program = SUITE[workload]
        legacy_rec, fast_rec = EventRecorder(), EventRecorder()
        legacy = run_legacy(monkeypatch, program, observers=[legacy_rec])
        fast = run_fast(monkeypatch, program, observers=[fast_rec])
        assert_results_identical(legacy, fast)
        assert legacy_rec.events == fast_rec.events

    def test_observerless_run_matches_observed(self, monkeypatch, workload):
        program = SUITE[workload]
        observed = run_fast(monkeypatch, program, observers=[EventRecorder()])
        bare = run_fast(monkeypatch, program)
        assert_results_identical(observed, bare)


def _loop_program():
    pb = ProgramBuilder("loop")
    fb = pb.function()
    fb.block("entry")
    fb.mov("i", 0)
    fb.mov("base", 100)
    fb.br("body")
    fb.block("body")
    fb.load("x", "base")
    fb.add("x", "x", 1)
    fb.store("x", "base")
    fb.add("i", "i", 1)
    fb.cmplt("c", "i", 20)
    fb.brcond("c", "body", "done")
    fb.block("done")
    fb.halt()
    pb.add(fb.build())
    program = pb.build()
    program.poke(100, 7)
    return program


class TestLimitParity:
    @pytest.mark.parametrize("limit", [1, 2, 5, 6, 7, 50, 121, 122])
    def test_limit_raises_at_the_same_operation(self, monkeypatch, limit):
        """The budget error fires after the exact same observer events,
        with the exact same message, on both paths."""
        program = _loop_program()
        outcomes = []
        for runner in (run_legacy, run_fast):
            rec = EventRecorder()
            try:
                runner(monkeypatch, program, observers=[rec],
                       max_operations=limit)
                outcomes.append(("completed", rec.events))
            except ExecutionLimitExceeded as exc:
                outcomes.append((str(exc), rec.events))
        assert outcomes[0] == outcomes[1]

    def test_limit_message_names_program_and_budget(self, monkeypatch):
        program = _loop_program()
        with pytest.raises(ExecutionLimitExceeded, match="loop: exceeded 3"):
            run_fast(monkeypatch, program, max_operations=3)


class TestDispatchMiss:
    """Prediction-form opcodes have no architectural interpretation; the
    specialized path must reject them with the legacy loop's message."""

    @staticmethod
    def _program_with(op):
        pb = ProgramBuilder("predform")
        fb = pb.function()
        fb.block("entry")
        fb.mov("a", 1)
        fb.halt()
        pb.add(fb.build())
        program = pb.build()
        # The verifier (rightly) rejects prediction forms in front-end
        # code, so splice the op in after the build, before the halt —
        # exactly the malformed input the interpreter must reject.
        ops = program.main.block("entry").operations
        ops.insert(len(ops) - 1, op)
        return program

    @pytest.mark.parametrize(
        "op",
        [
            Operation(Opcode.LDPRED, dest=Reg("p")),
            Operation(Opcode.CHKPRED, dest=Reg("p"), srcs=(Reg("a"),)),
        ],
        ids=["ldpred", "chkpred"],
    )
    def test_same_message_on_both_paths(self, monkeypatch, op):
        program = self._program_with(op)
        messages = []
        for runner in (run_legacy, run_fast):
            with pytest.raises(ValueError) as excinfo:
                runner(monkeypatch, program)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        assert "prediction forms exist only in scheduled code" in messages[0]


class TestStrictRegisters:
    def test_uninitialised_read_raises_on_both_paths(self, monkeypatch):
        pb = ProgramBuilder("strict")
        fb = pb.function()
        fb.block("entry")
        fb.add("out", "never_written", 1)
        fb.halt()
        pb.add(fb.build())
        program = pb.build()
        messages = []
        for runner in (run_legacy, run_fast):
            with pytest.raises(KeyError) as excinfo:
                runner(monkeypatch, program, strict_registers=True)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        assert "never_written" in messages[0]

    def test_strict_results_match_when_all_registers_written(
        self, monkeypatch
    ):
        program = _loop_program()
        legacy = run_legacy(monkeypatch, program, strict_registers=True)
        fast = run_fast(monkeypatch, program, strict_registers=True)
        assert_results_identical(legacy, fast)


class TestFallThrough:
    def test_missing_branch_raises_identically(self, monkeypatch):
        pb = ProgramBuilder("fallthrough")
        fb = pb.function()
        fb.block("entry")
        fb.mov("a", 1)
        fb.halt()
        pb.add(fb.build())
        program = pb.build()
        program.main.block("entry").operations.pop()  # drop the halt
        messages = []
        for runner in (run_legacy, run_fast):
            with pytest.raises(RuntimeError) as excinfo:
                runner(monkeypatch, program)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        assert "fell through without a branch" in messages[0]
