"""Program-level semantics coverage for every ALU opcode, plus a
property test cross-checking the interpreter against the opcode
evaluators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.builder import ProgramBuilder
from repro.ir.opcodes import Opcode, arity, evaluator, is_alu
from repro.profiling.interpreter import run_program

_BINARY_CASES = [
    (Opcode.ADD, 7, 5, 12),
    (Opcode.SUB, 7, 5, 2),
    (Opcode.MUL, 7, 5, 35),
    (Opcode.DIV, 17, 5, 3),
    (Opcode.DIV, -17, 5, -3),
    (Opcode.MOD, 17, 5, 2),
    (Opcode.AND, 12, 10, 8),
    (Opcode.OR, 12, 10, 14),
    (Opcode.XOR, 12, 10, 6),
    (Opcode.SHL, 3, 2, 12),
    (Opcode.SHR, 12, 2, 3),
    (Opcode.MIN, 7, 5, 5),
    (Opcode.MAX, 7, 5, 7),
    (Opcode.CMPEQ, 5, 5, 1),
    (Opcode.CMPNE, 5, 5, 0),
    (Opcode.CMPLT, 4, 5, 1),
    (Opcode.CMPLE, 5, 5, 1),
    (Opcode.CMPGT, 5, 4, 1),
    (Opcode.CMPGE, 4, 5, 0),
    (Opcode.FADD, 1.5, 2.0, 3.5),
    (Opcode.FSUB, 1.5, 2.0, -0.5),
    (Opcode.FMUL, 1.5, 2.0, 3.0),
    (Opcode.FDIV, 3.0, 2.0, 1.5),
]

_UNARY_CASES = [
    (Opcode.MOV, 9, 9),
    (Opcode.NEG, 9, -9),
    (Opcode.NOT, 0, -1),
    (Opcode.ABS, -4, 4),
    (Opcode.FNEG, 2.5, -2.5),
    (Opcode.FABS, -2.5, 2.5),
    (Opcode.FSQRT, 16.0, 4.0),
]


def run_single_op(opcode, operands):
    pb = ProgramBuilder("t")
    fb = pb.function()
    fb.block("entry")
    fb.emit(opcode, "out", *operands)
    fb.halt()
    pb.add(fb.build())
    return run_program(pb.build()).registers["out"]


@pytest.mark.parametrize("opcode,a,b,expected", _BINARY_CASES)
def test_binary_opcode_through_interpreter(opcode, a, b, expected):
    assert run_single_op(opcode, (a, b)) == pytest.approx(expected)


@pytest.mark.parametrize("opcode,a,expected", _UNARY_CASES)
def test_unary_opcode_through_interpreter(opcode, a, expected):
    assert run_single_op(opcode, (a,)) == pytest.approx(expected)


_ALU_OPCODES = [op for op in Opcode if is_alu(op)]
_INT_OPCODES = [
    op for op in _ALU_OPCODES
    if not op.value.startswith("f")
]


@settings(max_examples=80, deadline=None)
@given(
    which=st.integers(min_value=0, max_value=len(_INT_OPCODES) - 1),
    a=st.integers(min_value=-(2**20), max_value=2**20),
    b=st.integers(min_value=-(2**20), max_value=2**20),
)
def test_property_interpreter_matches_evaluator(which, a, b):
    """Executing any integer ALU op through a program yields exactly what
    the opcode evaluator computes on the same operands."""
    opcode = _INT_OPCODES[which]
    operands = (a, b) if arity(opcode) == 2 else (a,)
    expected = evaluator(opcode)(*operands)
    assert run_single_op(opcode, operands) == expected


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=-(2**16), max_value=2**16), min_size=1, max_size=12
    )
)
def test_property_store_load_roundtrip(values):
    """Values stored then reloaded are bit-identical."""
    pb = ProgramBuilder("t")
    fb = pb.function()
    fb.block("entry")
    fb.mov("base", 5000)
    for i, v in enumerate(values):
        fb.mov("tmp", v)
        fb.store("tmp", "base", offset=i)
    for i in range(len(values)):
        fb.load(f"out{i}", "base", offset=i)
    fb.halt()
    pb.add(fb.build())
    result = run_program(pb.build())
    for i, v in enumerate(values):
        assert result.registers[f"out{i}"] == v
