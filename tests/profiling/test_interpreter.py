"""Unit tests for the architectural interpreter."""

import pytest

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.profiling.interpreter import (
    ExecutionLimitExceeded,
    Interpreter,
    run_program,
)


def program_of(emit, name="p", memory=None, registers=None):
    pb = ProgramBuilder(name)
    fb = pb.function()
    emit(fb)
    pb.add(fb.build())
    for base, vals in (memory or {}).items():
        pb.memory(base, vals)
    for reg, val in (registers or {}).items():
        pb.register(reg, val)
    return pb.build()


class TestStraightLineSemantics:
    def test_arithmetic(self):
        def emit(fb):
            fb.block("entry")
            fb.mov("a", 6)
            fb.mov("b", 7)
            fb.mul("c", "a", "b")
            fb.sub("d", "c", 2)
            fb.halt()

        result = run_program(program_of(emit))
        assert result.registers["c"] == 42
        assert result.registers["d"] == 40
        assert result.halted

    def test_memory_roundtrip(self):
        def emit(fb):
            fb.block("entry")
            fb.mov("p", 100)
            fb.load("a", "p")          # 100 -> 11
            fb.load("b", "p", offset=1)  # 101 -> 22
            fb.add("c", "a", "b")
            fb.store("c", "p", offset=5)
            fb.halt()

        result = run_program(program_of(emit, memory={100: [11, 22]}))
        assert result.registers["c"] == 33
        assert result.memory.peek(105) == 33

    def test_uninitialised_memory_reads_zero(self):
        def emit(fb):
            fb.block("entry")
            fb.mov("p", 999)
            fb.load("a", "p")
            fb.halt()

        result = run_program(program_of(emit))
        assert result.registers["a"] == 0

    def test_initial_registers(self):
        def emit(fb):
            fb.block("entry")
            fb.add("out", "arg", 1)
            fb.halt()

        result = run_program(program_of(emit, registers={"arg": 41}))
        assert result.registers["out"] == 42

    def test_float_semantics(self):
        def emit(fb):
            fb.block("entry")
            fb.mov("x", 2.0)
            fb.fmul("y", "x", 3.5)
            fb.fdiv("z", "y", 2.0)
            fb.halt()

        result = run_program(program_of(emit))
        assert result.registers["y"] == pytest.approx(7.0)
        assert result.registers["z"] == pytest.approx(3.5)


class TestControlFlow:
    def test_brcond_takes_then_on_nonzero(self):
        def emit(fb):
            fb.block("entry")
            fb.mov("c", 1)
            fb.brcond("c", "then", "else")
            fb.block("then")
            fb.mov("out", 10)
            fb.br("exit")
            fb.block("else")
            fb.mov("out", 20)
            fb.br("exit")
            fb.block("exit")
            fb.halt()

        assert run_program(program_of(emit)).registers["out"] == 10

    def test_brcond_takes_else_on_zero(self):
        def emit(fb):
            fb.block("entry")
            fb.mov("c", 0)
            fb.brcond("c", "then", "else")
            fb.block("then")
            fb.mov("out", 10)
            fb.br("exit")
            fb.block("else")
            fb.mov("out", 20)
            fb.br("exit")
            fb.block("exit")
            fb.halt()

        assert run_program(program_of(emit)).registers["out"] == 20

    def test_loop_executes_expected_iterations(self, loop_program):
        result = run_program(loop_program)
        # sum of 3*k for k in 0..49
        assert result.registers["r_acc"] == 3 * sum(range(50))
        assert result.dynamic_blocks == 2 + 50  # entry + 50 loop + exit? no:
        # entry(1) + loop(50) + exit(1) = 52
        assert result.dynamic_blocks == 52

    def test_operation_budget_enforced(self):
        def emit(fb):
            fb.block("entry")
            fb.br("entry")  # infinite loop

        with pytest.raises(ExecutionLimitExceeded):
            Interpreter(max_operations=100).run(program_of(emit))


class TestStrictMode:
    def test_strict_rejects_uninitialised_register(self):
        def emit(fb):
            fb.block("entry")
            fb.add("out", "ghost", 1)
            fb.halt()

        with pytest.raises(KeyError, match="ghost"):
            Interpreter(strict_registers=True).run(program_of(emit))

    def test_lenient_reads_zero(self):
        def emit(fb):
            fb.block("entry")
            fb.add("out", "ghost", 1)
            fb.halt()

        assert run_program(program_of(emit)).registers["out"] == 1


class TestObservers:
    def test_observers_see_every_operation(self, loop_program):
        class Recorder:
            def __init__(self):
                self.blocks = 0
                self.ops = 0

            def block_entered(self, block):
                self.blocks += 1

            def operation_executed(self, op, inputs, result):
                self.ops += 1

        recorder = Recorder()
        result = run_program(loop_program, observers=[recorder])
        assert recorder.blocks == result.dynamic_blocks
        assert recorder.ops == result.dynamic_operations

    def test_observer_sees_actual_values(self):
        def emit(fb):
            fb.block("entry")
            fb.mov("a", 5)
            fb.add("b", "a", 2)
            fb.halt()

        seen = []

        class Recorder:
            def block_entered(self, block):
                pass

            def operation_executed(self, op, inputs, result):
                seen.append((op.opcode.value, inputs, result))

        run_program(program_of(emit), observers=[Recorder()])
        assert ("mov", (5,), 5) in seen
        assert ("add", (5, 2), 7) in seen

    def test_load_store_counters(self, loop_program):
        result = run_program(loop_program)
        assert result.loads_executed == 50
        assert result.stores_executed == 1
