"""Edge-case tests for the two execution engines."""

import pytest

from repro.core.cc_engine import (
    CompensationEngine,
    SimulationDeadlock,
)
from repro.core.ccb import CCBEntry, OperandSource, SourceKind
from repro.core.machine_sim import simulate_block
from repro.core.ovb import OperandValueBuffer
from repro.core.specsched import schedule_speculative
from repro.core.speculation import transform_block
from repro.core.sync_register import SyncRegisterState
from repro.core.vliw_engine import VLIWEngineSim
from repro.ir.builder import FunctionBuilder
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation, Reg
from repro.machine.configs import PLAYDOH_4W
from repro.sched.list_scheduler import schedule_block


def make_entry(op_id_origins, bit=5, insert_time=3):
    op = Operation(opcode=Opcode.MOV, dest=Reg("x"), srcs=(Reg("y"),))
    return CCBEntry(
        operation=op,
        insert_time=insert_time,
        origins=frozenset(op_id_origins),
        sources=(OperandSource(SourceKind.SHIPPED),),
        sync_bit=bit,
    )


class TestCompensationEngineDirect:
    def setup_method(self):
        self.ovb = OperandValueBuffer()
        self.sync = SyncRegisterState(width=16)
        self.engine = CompensationEngine(PLAYDOH_4W, self.ovb, self.sync)

    def test_head_blocks_until_origin_resolved(self):
        self.ovb.record_predicted(100, available_at=1)
        entry = make_entry({100})
        self.sync.set_bit(entry.sync_bit, 3)
        self.ovb.record_speculated(entry.op_id, available_at=4, origins=entry.origins)
        self.engine.insert(entry)
        self.engine.process_available()
        assert self.engine.buffer.pending == 1  # still blocked
        self.ovb.apply_check(100, time=6, correct=True)
        self.engine.process_available()
        assert self.engine.buffer.pending == 0
        assert self.engine.stats.flushed == 1

    def test_flush_occupies_one_slot(self):
        self.ovb.record_predicted(100, available_at=1)
        self.ovb.apply_check(100, time=6, correct=True)
        first = make_entry({100}, bit=5, insert_time=3)
        second = make_entry({100}, bit=6, insert_time=3)
        for e in (first, second):
            self.sync.set_bit(e.sync_bit, 3)
            self.ovb.record_speculated(e.op_id, available_at=4, origins=e.origins)
            self.engine.insert(e)
        self.engine.process_available()
        events = self.engine.stats.events
        assert [kind for _, kind, _, _ in events] == ["flush", "flush"]
        # back-to-back slots: second flush one cycle after the first
        assert events[1][0] == events[0][0] + 1

    def test_drain_raises_on_unresolved_head(self):
        self.ovb.record_predicted(100, available_at=1)  # never checked
        entry = make_entry({100})
        self.sync.set_bit(entry.sync_bit, 3)
        self.ovb.record_speculated(entry.op_id, available_at=4, origins=entry.origins)
        self.engine.insert(entry)
        with pytest.raises(SimulationDeadlock, match="blocked after VLIW completion"):
            self.engine.drain()

    def test_execute_waits_for_corrected_operand(self):
        self.ovb.record_predicted(100, available_at=1)
        op = Operation(opcode=Opcode.MOV, dest=Reg("x"), srcs=(Reg("y"),))
        entry = CCBEntry(
            operation=op,
            insert_time=2,
            origins=frozenset({100}),
            sources=(OperandSource(SourceKind.PREDICTED, 100),),
            sync_bit=7,
        )
        self.sync.set_bit(7, 2)
        self.ovb.record_speculated(op.op_id, available_at=3, origins=entry.origins)
        self.engine.insert(entry)
        self.ovb.apply_check(100, time=9, correct=False)
        self.engine.process_available()
        (start, kind, op_id, completion) = self.engine.stats.events[0]
        assert kind == "execute"
        assert start >= 9  # corrected operand only exists at check time
        assert self.sync.clear_time(7) == completion


class TestVLIWEngineValidation:
    def test_rejects_incomplete_outcomes(self, m4):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("p", 100)
        load = fb.load("a", "p")
        fb.add("b", "a", 1)
        fb.store("b", "p", offset=5)
        fb.halt()
        block = fb.build().block("entry")
        spec = transform_block(block, m4, [load])
        sched = schedule_speculative(
            spec, m4, original_length=schedule_block(block, m4).length
        )
        with pytest.raises(ValueError, match="missing prediction outcomes"):
            simulate_block(sched, {})

    def test_extra_outcomes_tolerated(self, m4):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("p", 100)
        load = fb.load("a", "p")
        fb.add("b", "a", 1)
        fb.store("b", "p", offset=5)
        fb.halt()
        block = fb.build().block("entry")
        spec = transform_block(block, m4, [load])
        sched = schedule_speculative(
            spec, m4, original_length=schedule_block(block, m4).length
        )
        outcomes = {spec.ldpred_ids[0]: True, 999_999: False}
        run = simulate_block(sched, outcomes)
        assert run.predictions == 1
