"""Tests for speculative scheduling annotations (wait masks, CCB sources)."""

import pytest

from repro.core.ccb import SourceKind
from repro.core.isa_ext import OpForm
from repro.core.specsched import compute_cc_sources, schedule_speculative
from repro.core.speculation import transform_block
from repro.ir.builder import FunctionBuilder
from repro.ir.opcodes import Opcode
from repro.sched.list_scheduler import schedule_block


@pytest.fixture
def two_chain_spec(m4):
    fb = FunctionBuilder("f")
    fb.block("entry")
    fb.mov("p", 100)
    l1 = fb.load("a", "p")
    fb.add("b", "a", 1)       # spec, reads predicted a
    fb.mul("c", "b", "b")     # spec, reads speculated b
    fb.add("d", "c", "p")     # spec, reads speculated c + plain p
    fb.store("d", "p", offset=10)  # nonspec
    fb.halt()
    block = fb.build().block("entry")
    spec = transform_block(block, m4, [l1])
    return spec, m4, schedule_block(block, m4).length


class TestCCSources:
    def test_source_kinds(self, two_chain_spec):
        spec, m4, _ = two_chain_spec
        sources = compute_cc_sources(spec)
        ops_by_opcode = {
            op.opcode: op for op in spec.operations
            if spec.info[op.op_id].form is OpForm.SPECULATIVE
        }
        add_b = next(
            op for op in spec.operations
            if op.opcode is Opcode.ADD and op.dest.name == "b"
        )
        mul_c = next(op for op in spec.operations if op.opcode is Opcode.MUL)
        add_d = next(
            op for op in spec.operations
            if op.opcode is Opcode.ADD and op.dest.name == "d"
        )
        # b reads the LdPred value plus an immediate.
        kinds_b = [s.kind for s in sources[add_b.op_id]]
        assert kinds_b == [SourceKind.PREDICTED, SourceKind.SHIPPED]
        # c reads b twice (speculated).
        kinds_c = [s.kind for s in sources[mul_c.op_id]]
        assert kinds_c == [SourceKind.SPECULATED, SourceKind.SPECULATED]
        # d reads speculated c and the plain register p (shipped).
        kinds_d = [s.kind for s in sources[add_d.op_id]]
        assert kinds_d == [SourceKind.SPECULATED, SourceKind.SHIPPED]

    def test_producer_ids_correct(self, two_chain_spec):
        spec, _, _ = two_chain_spec
        sources = compute_cc_sources(spec)
        mul_c = next(op for op in spec.operations if op.opcode is Opcode.MUL)
        add_b = next(
            op for op in spec.operations
            if op.opcode is Opcode.ADD and op.dest.name == "b"
        )
        for source in sources[mul_c.op_id]:
            assert source.producer_id == add_b.op_id

    def test_only_speculative_ops_have_sources(self, two_chain_spec):
        spec, _, _ = two_chain_spec
        sources = compute_cc_sources(spec)
        spec_ids = {
            op.op_id for op in spec.operations
            if spec.info[op.op_id].form is OpForm.SPECULATIVE
        }
        assert set(sources) == spec_ids


class TestWaitMasks:
    def test_store_instruction_carries_wait_bits(self, two_chain_spec):
        spec, m4, orig = two_chain_spec
        sched = schedule_speculative(spec, m4, original_length=orig)
        store = next(op for op in spec.operations if op.is_store)
        cycle = sched.schedule.issue_cycle(store.op_id)
        assert sched.wait_bits_by_cycle.get(cycle) == spec.info[store.op_id].wait_bits

    def test_unwaiting_cycles_absent(self, two_chain_spec):
        spec, m4, orig = two_chain_spec
        sched = schedule_speculative(spec, m4, original_length=orig)
        ldpred_cycle = sched.schedule.issue_cycle(spec.ldpred_ids[0])
        store = next(op for op in spec.operations if op.is_store)
        if ldpred_cycle != sched.schedule.issue_cycle(store.op_id):
            assert ldpred_cycle not in sched.wait_bits_by_cycle

    def test_improvement_property(self, two_chain_spec):
        spec, m4, orig = two_chain_spec
        sched = schedule_speculative(spec, m4, original_length=orig)
        assert sched.improvement == orig - sched.length
        assert sched.label == "entry"

    def test_original_length_computed_when_omitted(self, two_chain_spec):
        spec, m4, orig = two_chain_spec
        sched = schedule_speculative(spec, m4)
        assert sched.original_length == orig

    def test_waiting_check_contributes_wait_bits(self, m4):
        # Chained prediction: the second load's check waits for the first.
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("p", 100)
        l1 = fb.load("a", "p")
        fb.add("q", "a", 4)
        l2 = fb.load("x", "q")
        fb.add("y", "x", 1)
        fb.mul("z", "y", 3)
        fb.store("z", "p", offset=9)
        fb.halt()
        block = fb.build().block("entry")
        spec = transform_block(block, m4, [l1, l2])
        check2 = spec.check_of[spec.ldpred_ids[1]]
        assert spec.info[check2].form is OpForm.CHECK
        assert spec.info[check2].wait_bits
        sched = schedule_speculative(spec, m4)
        cycle = sched.schedule.issue_cycle(check2)
        assert spec.info[check2].wait_bits <= sched.wait_bits_by_cycle[cycle]
