"""Unit tests for the Synchronization register and bit allocation."""

import pytest

from repro.core.sync_register import (
    SyncBitAllocator,
    SyncRegisterOverflow,
    SyncRegisterState,
)


class TestAllocator:
    def test_sequential_allocation(self):
        alloc = SyncBitAllocator(width=8)
        assert alloc.allocate(101) == 0
        assert alloc.allocate(102) == 1
        assert alloc.allocated == 2

    def test_idempotent_per_producer(self):
        alloc = SyncBitAllocator(width=8)
        bit = alloc.allocate(101)
        assert alloc.allocate(101) == bit
        assert alloc.allocated == 1

    def test_overflow(self):
        alloc = SyncBitAllocator(width=2)
        alloc.allocate(1)
        alloc.allocate(2)
        with pytest.raises(SyncRegisterOverflow):
            alloc.allocate(3)

    def test_bit_of(self):
        alloc = SyncBitAllocator()
        alloc.allocate(5)
        assert alloc.bit_of(5) == 0
        assert alloc.bit_of(6) is None

    def test_width_validation(self):
        with pytest.raises(ValueError):
            SyncBitAllocator(width=0)


class TestRegisterState:
    def test_set_then_clear(self):
        state = SyncRegisterState(width=8)
        state.set_bit(3, 10)
        assert state.clear_time(3) is None
        state.clear_bit(3, 15)
        assert state.clear_time(3) == 15

    def test_unset_bit_trivially_clear(self):
        state = SyncRegisterState(width=8)
        assert state.clear_time(5) == 0

    def test_clear_before_set_rejected(self):
        state = SyncRegisterState(width=8)
        with pytest.raises(RuntimeError, match="never set"):
            state.clear_bit(0, 5)

    def test_double_clear_keeps_earliest(self):
        state = SyncRegisterState(width=8)
        state.set_bit(0, 1)
        state.clear_bit(0, 9)
        state.clear_bit(0, 5)
        assert state.clear_time(0) == 5
        state.clear_bit(0, 7)  # later: ignored
        assert state.clear_time(0) == 5

    def test_clear_clamped_to_set_time(self):
        # A check can complete before a slow-to-issue speculated op even
        # sets its bit; the observable clear time is the set time.
        state = SyncRegisterState(width=8)
        state.set_bit(2, 10)
        state.clear_bit(2, 4)
        assert state.clear_time(2) == 10

    def test_reset_on_reset_bit(self):
        state = SyncRegisterState(width=8)
        state.set_bit(1, 0)
        state.clear_bit(1, 2)
        state.set_bit(1, 5)  # reused for a new prediction
        assert state.clear_time(1) is None

    def test_wait_until_clear(self):
        state = SyncRegisterState(width=8)
        state.set_bit(0, 0)
        state.set_bit(1, 0)
        state.clear_bit(0, 4)
        assert state.wait_until_clear({0, 1}) is None
        state.clear_bit(1, 9)
        assert state.wait_until_clear({0, 1}) == 9
        assert state.wait_until_clear(set()) == 0
        assert state.wait_until_clear({7}) == 0  # never predicted

    def test_bounds_checked(self):
        state = SyncRegisterState(width=4)
        with pytest.raises(IndexError):
            state.set_bit(4, 0)
        with pytest.raises(IndexError):
            state.clear_time(-1)
