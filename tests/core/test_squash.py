"""Tests for the superscalar-style squash recovery model."""

import pytest

from repro.core.baseline import simulate_squash_block
from repro.core.machine_sim import simulate_best_case, simulate_worst_case
from repro.core.specsched import schedule_speculative
from repro.core.speculation import transform_block
from repro.ir.builder import FunctionBuilder
from repro.sched.list_scheduler import schedule_block


@pytest.fixture
def sched(m4):
    fb = FunctionBuilder("f")
    fb.block("entry")
    fb.mov("p", 100)
    l1 = fb.load("a", "p")
    fb.add("b", "a", 1)
    fb.mul("c", "b", "b")
    l2 = fb.load("x", "p", offset=1)
    fb.add("y", "x", 2)
    fb.store("c", "p", offset=10)
    fb.store("y", "p", offset=11)
    fb.halt()
    block = fb.build().block("entry")
    spec = transform_block(block, m4, [l1, l2])
    return schedule_speculative(
        spec, m4, original_length=schedule_block(block, m4).length
    ), m4


class TestSquash:
    def test_all_correct_runs_at_spec_length(self, sched):
        schedule, m4 = sched
        outcomes = {l: True for l in schedule.spec.ldpred_ids}
        run = simulate_squash_block(schedule, outcomes, m4)
        assert not run.squashed
        assert run.effective_length == schedule.length
        assert run.mispredictions == 0

    def test_any_misprediction_restarts_whole_block(self, sched):
        schedule, m4 = sched
        l1, l2 = schedule.spec.ldpred_ids
        run = simulate_squash_block(schedule, {l1: False, l2: True}, m4)
        assert run.squashed
        assert run.mispredictions == 1
        expected = (
            run.detected_at + m4.branch_penalty + schedule.original_length
        )
        assert run.effective_length == expected
        assert run.effective_length > schedule.original_length

    def test_detection_is_earliest_failing_check(self, sched):
        schedule, m4 = sched
        l1, l2 = schedule.spec.ldpred_ids
        t1 = schedule.schedule.completion_cycle(schedule.spec.check_of[l1])
        t2 = schedule.schedule.completion_cycle(schedule.spec.check_of[l2])
        both = simulate_squash_block(schedule, {l1: False, l2: False}, m4)
        assert both.detected_at == min(t1, t2)
        only_l1 = simulate_squash_block(schedule, {l1: False, l2: True}, m4)
        assert only_l1.detected_at == t1

    def test_squash_worse_than_parallel_recovery_on_mispredict(self, sched):
        schedule, m4 = sched
        outcomes = {l: False for l in schedule.spec.ldpred_ids}
        squash = simulate_squash_block(schedule, outcomes, m4)
        proposed = simulate_worst_case(schedule)
        assert squash.effective_length > proposed.effective_length

    def test_missing_outcomes_rejected(self, sched):
        schedule, m4 = sched
        with pytest.raises(ValueError, match="missing outcomes"):
            simulate_squash_block(schedule, {}, m4)

    def test_program_level_accounting(self):
        from repro.core.metrics import compile_program
        from repro.core.program_sim import simulate_program
        from repro.machine.configs import PLAYDOH_4W
        from repro.profiling.profile_run import profile_program
        from repro.workloads.suite import load_benchmark

        program = load_benchmark("vortex", scale=0.4)
        profile = profile_program(program)
        compilation = compile_program(program, PLAYDOH_4W, profile)
        result = simulate_program(compilation)
        assert result.cycles_squash > 0
        # Each mispredicted speculated instance squashes exactly once.
        assert result.squashed_instances > 0
        assert result.cycles_proposed <= result.cycles_squash
