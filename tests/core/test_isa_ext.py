"""Unit tests for the ISA-extension data structures."""

import pytest

from repro.core.isa_ext import OpForm, SpecOpInfo
from repro.core.speculation import transform_block
from repro.ir.builder import FunctionBuilder


@pytest.fixture
def spec(m4):
    fb = FunctionBuilder("f")
    fb.block("entry")
    fb.mov("p", 100)
    load = fb.load("a", "p")
    fb.add("b", "a", 1)
    fb.mul("c", "b", 2)
    fb.store("c", "p", offset=4)
    fb.halt()
    block = fb.build().block("entry")
    return transform_block(block, m4, [load])


class TestSpecOpInfo:
    def test_defaults(self):
        info = SpecOpInfo(form=OpForm.PLAIN)
        assert info.origins == frozenset()
        assert info.sync_bit is None
        assert info.wait_bits == frozenset()
        assert info.verifies is None

    def test_frozen(self):
        info = SpecOpInfo(form=OpForm.PLAIN)
        with pytest.raises(AttributeError):
            info.form = OpForm.CHECK


class TestSpeculativeBlock:
    def test_num_predictions(self, spec):
        assert spec.num_predictions == 1

    def test_speculated_ops_in_program_order(self, spec):
        names = [op.dest.name for op in spec.speculated_ops]
        assert names == ["b", "c"]

    def test_sync_bits_used_counts_ldpred_and_spec(self, spec):
        # 1 LdPred bit + 2 speculated-op bits
        assert spec.sync_bits_used == 3

    def test_form_and_origins_accessors(self, spec):
        ldpred_id = spec.ldpred_ids[0]
        assert spec.form(ldpred_id) is OpForm.LDPRED
        assert spec.origins(ldpred_id) == frozenset({ldpred_id})
        check_id = spec.check_of[ldpred_id]
        assert spec.form(check_id) is OpForm.CHECK

    def test_mappings_consistent(self, spec):
        for ldpred_id in spec.ldpred_ids:
            assert ldpred_id in spec.check_of
            assert ldpred_id in spec.predicted_load_of
            # the original load id belongs to the original block
            load_id = spec.predicted_load_of[ldpred_id]
            assert any(op.op_id == load_id for op in spec.original.operations)

    def test_ldpred_immediately_precedes_check(self, spec):
        position = {op.op_id: i for i, op in enumerate(spec.operations)}
        for ldpred_id, check_id in spec.check_of.items():
            assert position[check_id] == position[ldpred_id] + 1

    def test_repr(self, spec):
        text = repr(spec)
        assert "1 predictions" in text
        assert "2 speculated" in text
