"""Tests of the dual-engine block simulator."""

import pytest

from repro.core.machine_sim import (
    simulate_all_outcomes,
    simulate_best_case,
    simulate_block,
    simulate_worst_case,
)
from repro.core.specsched import schedule_speculative
from repro.core.speculation import transform_block
from repro.obs.trace import CheckEvent, ExecuteEvent
from repro.ir.builder import FunctionBuilder
from repro.sched.list_scheduler import schedule_block


def spec_schedule_for(emit, predicted, machine, live_out=frozenset()):
    fb = FunctionBuilder("f")
    fb.block("entry")
    handles = emit(fb)
    fb.halt()
    block = fb.build().block("entry")
    loads = [handles[i] for i in predicted]
    original = schedule_block(block, machine).length
    spec = transform_block(block, machine, loads, live_out=live_out)
    return schedule_speculative(spec, machine, original_length=original)


@pytest.fixture
def chain(m4):
    """load -> add -> mul -> store (store is the non-speculative sink)."""
    def emit(fb):
        fb.mov("p", 100)
        load = fb.load("a", "p")
        fb.add("b", "a", 1)
        fb.mul("c", "b", "b")
        fb.store("c", "p", offset=10)
        return [load]

    return spec_schedule_for(emit, [0], m4)


class TestSingleBlockTiming:
    def test_best_case_equals_static_length(self, chain):
        run = simulate_best_case(chain)
        assert run.effective_length == chain.length
        assert run.stall_cycles == 0
        assert run.executed == 0
        assert run.flushed == 2  # add and mul were correctly speculated
        assert run.all_correct

    def test_best_case_beats_original(self, chain):
        run = simulate_best_case(chain)
        assert run.effective_length < chain.original_length

    def test_worst_case_executes_compensation(self, chain):
        run = simulate_worst_case(chain)
        assert run.executed == 2
        assert run.flushed == 0
        assert run.mispredictions == 1
        assert run.all_incorrect
        assert run.effective_length >= simulate_best_case(chain).effective_length

    def test_worst_case_stalls_on_sync_bits(self, chain):
        run = simulate_worst_case(chain)
        assert run.stall_cycles > 0

    def test_missing_outcome_rejected(self, chain):
        with pytest.raises(ValueError, match="missing prediction outcomes"):
            simulate_block(chain, {})

    def test_trace_collection(self, chain):
        run = simulate_worst_case(chain)
        assert run.trace == ()
        traced = simulate_block(
            chain,
            {chain.spec.ldpred_ids[0]: False},
            collect_trace=True,
        )
        checks = [e for e in traced.trace if isinstance(e, CheckEvent)]
        assert any(not e.correct for e in checks)
        assert any(isinstance(e, ExecuteEvent) for e in traced.trace)
        # The rendered form keeps the historical wording.
        text = "\n".join(str(e) for e in traced.trace)
        assert "MISPREDICT" in text
        assert "execute" in text

    def test_trace_events_sorted_by_cycle(self, chain):
        traced = simulate_block(
            chain,
            {chain.spec.ldpred_ids[0]: False},
            collect_trace=True,
        )
        cycles = [e.cycle for e in traced.trace]
        assert cycles == sorted(cycles)

    def test_all_outcomes_enumerates_patterns(self, chain):
        results = simulate_all_outcomes(chain)
        assert set(results) == {(False,), (True,)}
        assert results[(True,)].effective_length <= results[(False,)].effective_length


class TestTwoPredictionBlock:
    @pytest.fixture
    def two_chains(self, m4):
        def emit(fb):
            fb.mov("p", 100)
            l1 = fb.load("a", "p")
            fb.add("b", "a", 1)
            fb.mul("c", "b", 3)
            l2 = fb.load("x", "p", offset=1)
            fb.add("y", "x", 2)
            fb.mul("z", "y", 5)
            fb.store("c", "p", offset=10)
            fb.store("z", "p", offset=11)
            return [l1, l2]

        return spec_schedule_for(emit, [0, 1], m4)

    def test_partial_misprediction_between_best_and_worst(self, two_chains):
        results = simulate_all_outcomes(two_chains)
        best = results[(True, True)].effective_length
        worst = results[(False, False)].effective_length
        for pattern, run in results.items():
            assert best <= run.effective_length <= worst

    def test_mixed_classification(self, two_chains):
        results = simulate_all_outcomes(two_chains)
        mixed = results[(True, False)]
        assert not mixed.all_correct and not mixed.all_incorrect
        assert mixed.mispredictions == 1
        assert mixed.predictions == 2

    def test_flush_execute_partition(self, two_chains):
        # Each prediction guards exactly two dependent ops: whatever is
        # not flushed must be executed.
        for run in simulate_all_outcomes(two_chains).values():
            assert run.flushed + run.executed == 4


class TestCCTail:
    def test_cc_tail_reported_not_charged(self, m4):
        # A long-latency speculated op (mul, 3 cycles) recomputed at the
        # very end can outlast the VLIW stream; the tail is reported.
        def emit(fb):
            fb.mov("p", 100)
            load = fb.load("a", "p")
            fb.add("b", "a", 1)
            fb.mul("c", "b", "b")
            fb.mul("d", "c", "c")
            fb.store("b", "p", offset=10)
            return [load]

        sched = spec_schedule_for(emit, [0], m4)
        run = simulate_worst_case(sched)
        assert run.effective_length == run.vliw_length
        assert run.cc_tail >= 0
