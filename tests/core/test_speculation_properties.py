"""Property-based tests of the full speculation + simulation stack.

Random straight-line blocks with random prediction subsets are pushed
through transform -> schedule -> all-outcome simulation, and structural
invariants are checked on each stage.  This is the widest net for
interaction bugs between the compiler pass and the dual-engine model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.isa_ext import OpForm
from repro.core.machine_sim import simulate_all_outcomes
from repro.core.specsched import schedule_speculative
from repro.core.speculation import transform_block
from repro.ir.builder import FunctionBuilder
from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W
from repro.sched.list_scheduler import schedule_block


def build_random_block(ops):
    fb = FunctionBuilder("f")
    fb.block("entry")
    fb.mov("r0", 100)
    loads = []
    for kind, dst, a, b in ops:
        if kind == "load":
            loads.append(fb.load(dst, a))
        elif kind == "alu":
            fb.add(dst, a, b)
        elif kind == "mul":
            fb.mul(dst, a, b)
        else:
            fb.store(a, b, offset=7)
    fb.halt()
    return fb.build().block("entry"), loads


def _ops_strategy():
    regs = st.sampled_from([f"r{i}" for i in range(5)])
    return st.lists(
        st.one_of(
            st.tuples(st.just("load"), regs, regs, regs),
            st.tuples(st.just("alu"), regs, regs, regs),
            st.tuples(st.just("mul"), regs, regs, regs),
            st.tuples(st.just("store"), regs, regs, regs),
        ),
        min_size=2,
        max_size=16,
    )


@settings(max_examples=60, deadline=None)
@given(ops=_ops_strategy(), pick=st.integers(min_value=0, max_value=3), wide=st.booleans())
def test_transform_and_simulate_invariants(ops, pick, wide):
    machine = PLAYDOH_8W if wide else PLAYDOH_4W
    block, loads = build_random_block(ops)
    if not loads:
        return
    # Choose up to `pick`+1 loads, but only ones whose operands are not
    # tainted by earlier choices is NOT required — the transform supports
    # chained predicted loads.  Dedup by destination to avoid predicting
    # two loads of the same register (an untested corner of the ISA).
    chosen = []
    seen_dests = set()
    for load in loads[: pick + 1]:
        if load.dest not in seen_dests:
            chosen.append(load)
            seen_dests.add(load.dest)
    if not chosen:
        return

    spec = transform_block(block, machine, chosen)

    # --- static invariants ------------------------------------------------
    # one LdPred and one check per prediction, forms consistent
    assert spec.num_predictions == len(chosen)
    forms = [spec.info[op.op_id].form for op in spec.operations]
    assert forms.count(OpForm.LDPRED) == len(chosen)
    assert forms.count(OpForm.CHECK) == len(chosen)
    # sync bits unique
    bits = [i.sync_bit for i in spec.info.values() if i.sync_bit is not None]
    assert len(bits) == len(set(bits))
    # stores and branches never speculative
    for op in spec.operations:
        if op.has_side_effect:
            assert spec.info[op.op_id].form in (OpForm.PLAIN, OpForm.NONSPEC)
    # speculative ops have origins; plain ops have none
    for op in spec.operations:
        info = spec.info[op.op_id]
        if info.form is OpForm.SPECULATIVE:
            assert info.origins
        if info.form is OpForm.PLAIN:
            assert not info.origins
    # program order is topological for the rewired graph
    position = {op.op_id: i for i, op in enumerate(spec.operations)}
    for edge in spec.graph.edges():
        assert position[edge.src] < position[edge.dst]

    # --- scheduling invariants -----------------------------------------------
    original_length = schedule_block(block, machine).length
    sched = schedule_speculative(spec, machine, original_length=original_length)
    for edge in spec.graph.edges():
        assert (
            sched.schedule.issue_cycle(edge.dst)
            >= sched.schedule.issue_cycle(edge.src) + edge.weight
        )

    # --- simulation invariants --------------------------------------------------
    results = simulate_all_outcomes(sched)
    assert len(results) == 1 << len(chosen)
    best = results[(True,) * len(chosen)]
    # All-correct: no stalls, nothing recomputed, static length achieved.
    assert best.stall_cycles == 0
    assert best.executed == 0
    assert best.effective_length == sched.length
    n_speculated = len(spec.speculated_ops)
    for pattern, run in results.items():
        # every run is at least as long as the all-correct one
        assert run.effective_length >= best.effective_length
        # every speculated op either flushes or re-executes
        assert run.flushed + run.executed == n_speculated
        assert run.predictions == len(chosen)
        assert run.mispredictions == sum(1 for c in pattern if not c)
