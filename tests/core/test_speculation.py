"""Unit tests for the value-speculation compiler pass."""

import pytest

from repro.core.isa_ext import OpForm
from repro.core.speculation import (
    SpeculationConfig,
    candidate_loads,
    speculate_block,
    transform_block,
)
from repro.ddg.graph import DepKind
from repro.ir.builder import FunctionBuilder
from repro.ir.opcodes import Opcode
from repro.ir.operation import Reg
from repro.profiling.value_profile import LoadValueStats, ValueProfile


def chain_block():
    """load -> add -> mul -> store, plus an independent mov."""
    fb = FunctionBuilder("f")
    fb.block("entry")
    fb.mov("p", 100)
    load = fb.load("a", "p")
    fb.add("b", "a", 1)
    fb.mul("c", "b", "b")
    fb.store("c", "p", offset=10)
    fb.mov("z", 5)
    fb.halt()
    return fb.build().block("entry"), load


def profile_for(rates: dict[int, float], executions: int = 100) -> ValueProfile:
    """Fabricate a profile with given best rates."""
    loads = {}
    for op_id, rate in rates.items():
        loads[op_id] = LoadValueStats(
            executions=executions,
            stride_correct=int(rate * executions),
            fcm_correct=0,
        )
    return ValueProfile(loads)


class TestClassification:
    def test_forms(self, m4):
        block, load = chain_block()
        spec = transform_block(block, m4, [load])
        forms = {str(op).split()[1].rstrip(":"): None for op in spec.operations}
        by_form = {}
        for op in spec.operations:
            by_form.setdefault(spec.info[op.op_id].form, []).append(op)
        assert len(by_form[OpForm.LDPRED]) == 1
        assert len(by_form[OpForm.CHECK]) == 1
        # add and mul consume the predicted value -> speculative
        assert {op.opcode for op in by_form[OpForm.SPECULATIVE]} == {
            Opcode.ADD,
            Opcode.MUL,
        }
        # the store is tainted but has a side effect -> non-speculative
        assert any(op.is_store for op in by_form[OpForm.NONSPEC])
        # untouched ops stay plain (movs, halt)
        assert len(by_form[OpForm.PLAIN]) == 3

    def test_origins_propagate_transitively(self, m4):
        block, load = chain_block()
        spec = transform_block(block, m4, [load])
        ldpred = spec.ldpred_ids[0]
        for op in spec.operations:
            info = spec.info[op.op_id]
            if info.form is OpForm.SPECULATIVE:
                assert info.origins == frozenset({ldpred})

    def test_sync_bits_unique(self, m4):
        block, load = chain_block()
        spec = transform_block(block, m4, [load])
        bits = [i.sync_bit for i in spec.info.values() if i.sync_bit is not None]
        assert len(bits) == len(set(bits))
        assert spec.sync_bits_used == len(bits)

    def test_nonspec_wait_bits_reference_immediate_producers(self, m4):
        block, load = chain_block()
        spec = transform_block(block, m4, [load])
        store = next(op for op in spec.operations if op.is_store)
        mul = next(op for op in spec.operations if op.opcode is Opcode.MUL)
        assert spec.info[store.op_id].wait_bits == frozenset(
            {spec.info[mul.op_id].sync_bit}
        )

    def test_liveout_values_stay_nonspec(self, m4):
        block, load = chain_block()
        spec = transform_block(
            block, m4, [load], live_out=frozenset({Reg("b")})
        )
        add = next(op for op in spec.operations if op.opcode is Opcode.ADD)
        assert spec.info[add.op_id].form is OpForm.NONSPEC

    def test_speculate_liveout_option(self, m4):
        block, load = chain_block()
        config = SpeculationConfig(speculate_liveout=True)
        spec = transform_block(
            block, m4, [load], live_out=frozenset({Reg("b")}), config=config
        )
        add = next(op for op in spec.operations if op.opcode is Opcode.ADD)
        assert spec.info[add.op_id].form is OpForm.SPECULATIVE

    def test_tainted_load_is_nonspec(self, m4):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("p", 100)
        first = fb.load("a", "p")
        fb.add("q", "a", 4)
        second = fb.load("b", "q")  # address derives from predicted value
        fb.halt()
        block = fb.build().block("entry")
        spec = transform_block(block, m4, [first])
        assert spec.info[second.op_id].form is OpForm.NONSPEC

    def test_branch_on_tainted_condition_is_nonspec(self, m4):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("p", 100)
        load = fb.load("a", "p")
        fb.cmplt("c", "a", 5)
        fb.brcond("c", "entry", "out")
        fb.block("out")
        fb.halt()
        block = fb.build().block("entry")
        spec = transform_block(block, m4, [load])
        term = next(op for op in spec.operations if op.opcode is Opcode.BRCOND)
        assert spec.info[term.op_id].form is OpForm.NONSPEC
        assert spec.info[term.op_id].wait_bits

    def test_sync_width_overflow_demotes(self, m4):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("p", 100)
        load = fb.load("a", "p")
        for i in range(6):
            fb.add(f"v{i}", "a", i)
        fb.halt()
        block = fb.build().block("entry")
        # width 3: 1 bit for LdPred + 2 speculated; remaining consumers
        # demote to non-speculative instead of failing.
        config = SpeculationConfig(sync_width=3)
        spec = transform_block(block, m4, [load], config=config)
        spec_count = sum(
            1 for i in spec.info.values() if i.form is OpForm.SPECULATIVE
        )
        nonspec_count = sum(
            1 for i in spec.info.values() if i.form is OpForm.NONSPEC
        )
        assert spec_count == 2
        assert nonspec_count == 4

    def test_non_member_load_rejected(self, m4):
        block, _ = chain_block()
        other_block, other_load = chain_block()
        with pytest.raises(ValueError, match="not an operation"):
            transform_block(block, m4, [other_load])

    def test_store_rejected_as_prediction_target(self, m4):
        block, _ = chain_block()
        store = next(op for op in block.operations if op.is_store)
        with pytest.raises(ValueError, match="can be predicted"):
            transform_block(block, m4, [store])

    def test_alu_ops_are_predictable(self, m4):
        """The paper's general formulation: any value-producing op may
        have its destination predicted (see also test_alu_prediction)."""
        block, _ = chain_block()
        mul = next(op for op in block.operations if op.opcode is Opcode.MUL)
        spec = transform_block(block, m4, [mul])
        check_id = spec.check_of[spec.ldpred_ids[0]]
        check = next(op for op in spec.operations if op.op_id == check_id)
        # the ALU check re-executes the op itself with compare semantics
        assert check.opcode is Opcode.MUL
        assert spec.info[check_id].form is OpForm.CHECK


class TestTransformedGraph:
    def test_spec_consumer_reads_from_ldpred(self, m4):
        block, load = chain_block()
        spec = transform_block(block, m4, [load])
        add = next(op for op in spec.operations if op.opcode is Opcode.ADD)
        ldpred_id = spec.ldpred_ids[0]
        flow_srcs = [
            e.src for e in spec.graph.predecessors(add.op_id) if e.kind is DepKind.FLOW
        ]
        assert ldpred_id in flow_srcs
        assert spec.check_of[ldpred_id] not in flow_srcs

    def test_ldpred_precedes_check_by_output_edge(self, m4):
        block, load = chain_block()
        spec = transform_block(block, m4, [load])
        ldpred_id = spec.ldpred_ids[0]
        check_id = spec.check_of[ldpred_id]
        kinds = {
            e.kind for e in spec.graph.successors(ldpred_id) if e.dst == check_id
        }
        assert DepKind.OUTPUT in kinds

    def test_check_inherits_memory_ordering(self, m4):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("p", 100)
        fb.store(1, "p", offset=50)
        load = fb.load("a", "p")
        fb.add("b", "a", 1)
        fb.halt()
        block = fb.build().block("entry")
        spec = transform_block(block, m4, [load])
        check_id = spec.check_of[spec.ldpred_ids[0]]
        store = next(op for op in spec.operations if op.is_store)
        mem_edges = [
            e for e in spec.graph.successors(store.op_id)
            if e.dst == check_id and e.kind is DepKind.MEM
        ]
        assert mem_edges

    def test_nonspec_waits_for_check_via_sync_edge(self, m4):
        block, load = chain_block()
        spec = transform_block(block, m4, [load])
        store = next(op for op in spec.operations if op.is_store)
        check_id = spec.check_of[spec.ldpred_ids[0]]
        sync_srcs = [
            e.src
            for e in spec.graph.predecessors(store.op_id)
            if e.kind is DepKind.SYNC
        ]
        assert check_id in sync_srcs

    def test_graph_program_order_is_topological(self, m4):
        block, load = chain_block()
        spec = transform_block(block, m4, [load])
        position = {op.op_id: i for i, op in enumerate(spec.operations)}
        for edge in spec.graph.edges():
            assert position[edge.src] < position[edge.dst]


class TestSelection:
    def test_candidates_respect_threshold(self, m4):
        block, load = chain_block()
        good = profile_for({load.op_id: 0.9})
        bad = profile_for({load.op_id: 0.4})
        config = SpeculationConfig()
        assert [c.op_id for c in candidate_loads(block, m4, good, config)] == [load.op_id]
        assert candidate_loads(block, m4, bad, config) == []

    def test_candidates_respect_min_executions(self, m4):
        block, load = chain_block()
        profile = profile_for({load.op_id: 0.9}, executions=1)
        config = SpeculationConfig(min_profile_executions=10)
        assert candidate_loads(block, m4, profile, config) == []

    def test_speculate_block_improves_schedule(self, m4):
        from repro.sched.list_scheduler import schedule_block
        from repro.core.specsched import schedule_speculative

        block, load = chain_block()
        profile = profile_for({load.op_id: 0.9})
        spec = speculate_block(block, m4, profile)
        assert spec is not None
        original = schedule_block(block, m4).length
        speculative = schedule_speculative(spec, m4).length
        assert speculative < original

    def test_speculate_block_returns_none_without_candidates(self, m4):
        block, load = chain_block()
        profile = profile_for({load.op_id: 0.1})
        assert speculate_block(block, m4, profile) is None

    def test_speculate_block_returns_none_when_unprofitable(self, m4):
        # A load whose value nothing consumes: prediction cannot shorten
        # the schedule.
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("p", 100)
        load = fb.load("a", "p")
        fb.mov("z", 1)
        fb.halt()
        block = fb.build().block("entry")
        profile = profile_for({load.op_id: 0.99})
        assert speculate_block(block, m4, profile) is None

    def test_max_predictions_cap(self, m4):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("p", 100)
        loads = []
        for i in range(3):
            loads.append(fb.load(f"a{i}", "p", offset=i))
            fb.add(f"b{i}", f"a{i}", 1)
            fb.mul(f"c{i}", f"b{i}", 3)
        fb.halt()
        block = fb.build().block("entry")
        profile = profile_for({l.op_id: 0.95 for l in loads})
        config = SpeculationConfig(max_predictions=1)
        spec = speculate_block(block, m4, profile, config=config)
        assert spec is not None
        assert spec.num_predictions == 1
