"""Tests for the Figure-7-style timeline renderer."""

import pytest

from repro.core.machine_sim import simulate_block
from repro.core.timeline import render_timeline


@pytest.fixture
def traced_run(paper_example):
    sched = paper_example.spec_schedule
    l4, l7 = sched.spec.ldpred_ids
    return sched, simulate_block(sched, {l4: True, l7: False}, collect_trace=True)


class TestRenderTimeline:
    def test_requires_traced_run(self, paper_example):
        sched = paper_example.spec_schedule
        l4, l7 = sched.spec.ldpred_ids
        untraced = simulate_block(sched, {l4: True, l7: True})
        with pytest.raises(ValueError, match="collect_trace"):
            render_timeline(sched, untraced)

    def test_header_summarises_run(self, traced_run):
        sched, run = traced_run
        text = render_timeline(sched, run)
        assert f"{run.effective_length} cycles" in text
        assert "1/2 mispredicted" in text

    def test_all_forms_annotated(self, traced_run):
        sched, run = traced_run
        text = render_timeline(sched, run)
        for glyph in ("[LdPred]", "[check]", "[spec]", "[nonspec]"):
            assert glyph in text

    def test_sync_bit_annotations(self, traced_run):
        sched, run = traced_run
        text = render_timeline(sched, run)
        assert "+b0" in text      # LdPred sets bit 0
        assert "?b{" in text      # non-speculative wait masks

    def test_cce_activity_shown(self, traced_run):
        sched, run = traced_run
        text = render_timeline(sched, run)
        assert "flush op" in text
        assert "execute op" in text
        assert "done @" in text

    def test_events_column(self, traced_run):
        sched, run = traced_run
        text = render_timeline(sched, run)
        assert "MISPREDICT" in text
        assert "stall" in text

    def test_every_issued_op_appears(self, traced_run):
        sched, run = traced_run
        text = render_timeline(sched, run)
        for op in sched.spec.operations:
            assert f"op{op.op_id} " in text

    def test_issue_times_and_cc_events_recorded(self, traced_run):
        sched, run = traced_run
        assert len(run.issue_times) == len(sched.spec.operations)
        assert len(run.cc_events) == run.flushed + run.executed
        for start, kind, op_id, completion in run.cc_events:
            assert kind in ("flush", "execute")
            assert completion > start
