"""Unit tests for the Operand Value Buffer and Compensation Code Buffer."""

import pytest

from repro.core.ccb import (
    CCBEntry,
    CCBFull,
    CompensationCodeBuffer,
    OperandSource,
    SourceKind,
)
from repro.core.ovb import OperandKind, OperandState, OperandValueBuffer
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation, Reg


def entry(op_id_holder=[], insert_time=0, origins=frozenset({1}), bit=0):
    op = Operation(opcode=Opcode.MOV, dest=Reg("a"), srcs=(Reg("b"),))
    return CCBEntry(
        operation=op,
        insert_time=insert_time,
        origins=origins,
        sources=(OperandSource(SourceKind.SHIPPED),),
        sync_bit=bit,
    )


class TestOVBStateMachine:
    def test_predicted_value_lifecycle_correct(self):
        ovb = OperandValueBuffer()
        record = ovb.record_predicted(10, available_at=2)
        assert record.kind is OperandKind.PREDICTED
        assert record.state is OperandState.PN
        assert not record.resolved
        ovb.apply_check(10, time=6, correct=True)
        assert record.state is OperandState.C
        assert record.resolved_at == 6
        assert record.correct_value_at == 2  # value was right all along

    def test_predicted_value_lifecycle_incorrect(self):
        ovb = OperandValueBuffer()
        record = ovb.record_predicted(10, available_at=2)
        ovb.apply_check(10, time=6, correct=False)
        assert record.state is OperandState.R
        # the check computed the true value: available at check time
        assert record.correct_value_at == 6

    def test_double_check_rejected(self):
        ovb = OperandValueBuffer()
        ovb.record_predicted(10, available_at=0)
        ovb.apply_check(10, time=3, correct=True)
        with pytest.raises(RuntimeError, match="twice"):
            ovb.apply_check(10, time=4, correct=True)

    def test_speculated_value_correct_path(self):
        ovb = OperandValueBuffer()
        record = ovb.record_speculated(20, available_at=4, origins=frozenset({10}))
        assert record.state is OperandState.RN
        ovb.resolve_speculated_correct(20, time=6)
        assert record.state is OperandState.C
        assert record.correct_value_at == 6

    def test_speculated_value_recompute_path(self):
        ovb = OperandValueBuffer()
        record = ovb.record_speculated(20, available_at=4, origins=frozenset({10}))
        ovb.mark_needs_recompute(20, time=6)
        assert record.state is OperandState.R
        assert record.correct_value_at is None
        ovb.record_recomputed(20, completion=9)
        assert record.correct_value_at == 9

    def test_recompute_requires_r_state(self):
        ovb = OperandValueBuffer()
        ovb.record_speculated(20, available_at=4, origins=frozenset({10}))
        with pytest.raises(RuntimeError):
            ovb.record_recomputed(20, completion=9)

    def test_kind_mismatch_detected(self):
        ovb = OperandValueBuffer()
        ovb.record_predicted(10, available_at=0)
        with pytest.raises(RuntimeError, match="expected speculated"):
            ovb.mark_needs_recompute(10, time=1)

    def test_missing_record(self):
        ovb = OperandValueBuffer()
        with pytest.raises(KeyError):
            ovb.record(99)
        assert ovb.get(99) is None

    def test_counters(self):
        ovb = OperandValueBuffer()
        ovb.record_predicted(1, 0)
        ovb.record_speculated(2, 0, frozenset({1}))
        ovb.apply_check(1, 3, True)
        assert ovb.inserts == 2
        assert ovb.updates == 1
        assert len(ovb) == 2
        assert 1 in ovb and 3 not in ovb


class TestCCB:
    def test_fifo_order(self):
        buf = CompensationCodeBuffer()
        e1 = entry(insert_time=0)
        e2 = entry(insert_time=1)
        buf.insert(e1)
        buf.insert(e2)
        assert buf.head is e1
        assert buf.pop() is e1
        assert buf.head is e2
        assert buf.pending == 1

    def test_insert_out_of_order_rejected(self):
        buf = CompensationCodeBuffer()
        buf.insert(entry(insert_time=5))
        with pytest.raises(ValueError, match="issue order"):
            buf.insert(entry(insert_time=4))

    def test_capacity(self):
        buf = CompensationCodeBuffer(capacity=2)
        buf.insert(entry(insert_time=0))
        buf.insert(entry(insert_time=1))
        with pytest.raises(CCBFull):
            buf.insert(entry(insert_time=2))

    def test_pop_frees_capacity(self):
        buf = CompensationCodeBuffer(capacity=1)
        buf.insert(entry(insert_time=0))
        buf.pop()
        buf.insert(entry(insert_time=1))  # ok now

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            CompensationCodeBuffer().pop()

    def test_high_water(self):
        buf = CompensationCodeBuffer()
        buf.insert(entry(insert_time=0))
        buf.insert(entry(insert_time=0))
        buf.pop()
        assert buf.high_water == 2
        assert buf.total_inserted == 2
        assert len(buf) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CompensationCodeBuffer(capacity=0)

    def test_operand_source_str(self):
        assert str(OperandSource(SourceKind.SHIPPED)) == "shipped"
        assert "op7" in str(OperandSource(SourceKind.PREDICTED, 7))
