"""End-to-end fuzzing of the full pipeline on random programs.

Each seed produces a random program that is profiled, compiled for both
machines and dynamically simulated; the pipeline's cross-stage
invariants must hold on every one of them.
"""

import pytest

from repro.core.metrics import OutcomeClass, compile_program
from repro.core.program_sim import simulate_program
from repro.ir.verifier import verify_program
from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W
from repro.profiling.profile_run import profile_program
from repro.workloads.synthetic import random_program

SEEDS = list(range(24))


@pytest.mark.parametrize("seed", SEEDS)
def test_pipeline_invariants_on_random_program(seed):
    program = random_program(seed)
    verify_program(program)
    profile = profile_program(program)
    assert profile.execution.halted

    for machine in (PLAYDOH_4W, PLAYDOH_8W):
        compilation = compile_program(program, machine, profile)

        # Static invariants: speculation only ever shortens the best case.
        for label in compilation.speculated_labels:
            block_comp = compilation.block(label)
            best = block_comp.best_case()
            assert best.effective_length < block_comp.original_length
            assert best.stall_cycles == 0
            worst = block_comp.worst_case()
            assert worst.effective_length >= best.effective_length

        result = simulate_program(compilation)

        # Accounting invariants.
        assert sum(result.cycles_by_class.values()) == result.cycles_proposed
        assert sum(result.instances_by_class.values()) == result.dynamic_blocks
        assert 0 <= result.mispredictions <= result.predictions
        # All-correct instances ran at their (strictly improved) static
        # schedule, so their cycles stay below the original.
        assert result.cycles_by_class.get(
            OutcomeClass.ALL_CORRECT, 0
        ) <= result.original_cycles_by_class.get(OutcomeClass.ALL_CORRECT, 0)
        # Unspeculated instances cost exactly their original schedule.
        assert result.cycles_by_class.get(
            OutcomeClass.NOT_SPECULATED, 0
        ) == result.original_cycles_by_class.get(OutcomeClass.NOT_SPECULATED, 0)


def test_random_program_deterministic():
    a = random_program(7)
    b = random_program(7)
    from repro.ir.asm import format_program_asm

    assert format_program_asm(a) == format_program_asm(b)


def test_random_programs_differ_across_seeds():
    from repro.ir.asm import format_program_asm

    texts = {format_program_asm(random_program(s)) for s in range(6)}
    assert len(texts) == 6


def test_random_programs_have_varied_predictability():
    """Across seeds, the generator produces both predictable and
    unpredictable loads (otherwise the fuzz never exercises thresholds)."""
    rates = []
    for seed in range(8):
        profile = profile_program(random_program(seed))
        rates.extend(
            stats.best_rate for stats in profile.values.loads.values()
        )
    assert any(rate >= 0.9 for rate in rates)
    assert any(rate <= 0.3 for rate in rates)
