"""Tests for predicting ALU results (the paper's general formulation)."""

import pytest

from repro.core.isa_ext import OpForm
from repro.core.machine_sim import (
    simulate_all_outcomes,
    simulate_best_case,
    simulate_worst_case,
)
from repro.core.specsched import schedule_speculative
from repro.core.speculation import SpeculationConfig, speculate_block, transform_block
from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.opcodes import Opcode
from repro.machine.configs import PLAYDOH_4W
from repro.profiling.profile_run import profile_program
from repro.sched.list_scheduler import schedule_block


def mul_chain_block():
    """A long-latency mul heads the chain; its inputs are cheap."""
    fb = FunctionBuilder("f")
    fb.block("entry")
    fb.mov("a", 6)
    fb.mov("b", 7)
    mul = fb.mul("m", "a", "b")
    fb.add("c", "m", 1)
    fb.add("d", "c", 2)
    fb.add("e", "d", 3)
    fb.store("e", "a", offset=9)
    fb.halt()
    return fb.build().block("entry"), mul


class TestAluTransform:
    def test_check_is_the_op_itself(self, m4):
        block, mul = mul_chain_block()
        spec = transform_block(block, m4, [mul])
        check_id = spec.check_of[spec.ldpred_ids[0]]
        check = next(op for op in spec.operations if op.op_id == check_id)
        assert check.opcode is Opcode.MUL
        assert check.srcs == mul.srcs

    def test_consumers_speculate_off_the_prediction(self, m4):
        block, mul = mul_chain_block()
        spec = transform_block(block, m4, [mul])
        forms = [spec.info[op.op_id].form for op in spec.operations]
        assert forms.count(OpForm.SPECULATIVE) == 3  # the three adds

    def test_schedule_improves(self, m4):
        block, mul = mul_chain_block()
        original = schedule_block(block, m4).length
        spec = transform_block(block, m4, [mul])
        sched = schedule_speculative(spec, m4, original_length=original)
        assert sched.length < original

    def test_all_outcome_invariants(self, m4):
        block, mul = mul_chain_block()
        original = schedule_block(block, m4).length
        spec = transform_block(block, m4, [mul])
        sched = schedule_speculative(spec, m4, original_length=original)
        best = simulate_best_case(sched)
        worst = simulate_worst_case(sched)
        assert best.stall_cycles == 0
        assert best.effective_length == sched.length
        assert worst.executed == 3
        assert worst.effective_length >= best.effective_length


class TestAluSelection:
    def build_program(self):
        """A loop whose mul result is highly predictable (stable inputs)
        and heads the longest chain; no load qualifies."""
        pb = ProgramBuilder("alu")
        fb = pb.function()
        fb.block("entry")
        fb.mov("i", 0)
        fb.mov("k", 13)
        fb.br("loop")
        fb.block("loop")
        fb.load("noise", "i", offset=7000)   # random values: unpredictable
        fb.mul("m", "k", "k")                # constant inputs: predictable
        fb.add("c1", "m", 1)
        fb.mul("c2", "c1", 3)
        fb.add("c3", "c2", "noise")
        fb.store("c3", "i", offset=8000)
        fb.add("i", "i", 1)
        fb.cmplt("cond", "i", 50)
        fb.brcond("cond", "loop", "exit")
        fb.block("exit")
        fb.halt()
        pb.add(fb.build())
        import random

        rng = random.Random(3)
        pb.memory(7000, [rng.randrange(1 << 16) for _ in range(50)])
        return pb.build()

    def test_alu_candidate_selected_only_with_flag(self):
        program = self.build_program()
        profile = profile_program(program, profile_alu=True)
        block = program.main.block("loop")

        without = speculate_block(
            block, PLAYDOH_4W, profile.values, config=SpeculationConfig()
        )
        with_alu = speculate_block(
            block,
            PLAYDOH_4W,
            profile.values,
            config=SpeculationConfig(predict_alu=True),
        )
        assert without is None  # the only predictable value is the mul
        assert with_alu is not None
        predicted = with_alu.predicted_load_of[with_alu.ldpred_ids[0]]
        mul = next(
            op for op in block.operations
            if op.opcode is Opcode.MUL and op.dest.name == "m"
        )
        assert predicted == mul.op_id

    def test_profile_without_alu_tracking_blocks_selection(self):
        program = self.build_program()
        profile = profile_program(program)  # loads only
        block = program.main.block("loop")
        spec = speculate_block(
            block,
            PLAYDOH_4W,
            profile.values,
            config=SpeculationConfig(predict_alu=True),
        )
        assert spec is None  # the mul was never profiled

    def test_end_to_end_dynamic_simulation(self):
        from repro.core.metrics import compile_program
        from repro.core.program_sim import simulate_program

        program = self.build_program()
        profile = profile_program(program, profile_alu=True)
        compilation = compile_program(
            program,
            PLAYDOH_4W,
            profile,
            config=SpeculationConfig(predict_alu=True),
        )
        assert compilation.speculated_labels == ["loop"]
        result = simulate_program(compilation)
        # the mul's value stream is constant: near-perfect prediction
        assert result.prediction_accuracy > 0.9
        assert result.cycles_proposed < result.cycles_nopred
