"""Tests for whole-program compilation and dynamic simulation accounting."""

import pytest

from repro.core.metrics import OutcomeClass, classify_outcome, compile_program
from repro.core.program_sim import simulate_program
from repro.profiling.profile_run import profile_program


class TestClassifyOutcome:
    def test_classes(self):
        assert classify_outcome(0, 0) is OutcomeClass.NOT_SPECULATED
        assert classify_outcome(3, 0) is OutcomeClass.ALL_CORRECT
        assert classify_outcome(3, 3) is OutcomeClass.ALL_INCORRECT
        assert classify_outcome(3, 1) is OutcomeClass.MIXED

    def test_more_mispredictions_than_predictions_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            classify_outcome(2, 3)
        with pytest.raises(ValueError, match="exceed"):
            classify_outcome(0, 1)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            classify_outcome(-1, 0)
        with pytest.raises(ValueError, match="negative"):
            classify_outcome(3, -1)


@pytest.fixture(scope="module")
def compiled(request):
    from repro.machine.configs import PLAYDOH_4W
    from repro.workloads.suite import load_benchmark

    program = load_benchmark("compress", scale=0.3)
    profile = profile_program(program)
    return compile_program(program, PLAYDOH_4W, profile)


class TestCompileProgram:
    def test_every_block_compiled(self, compiled):
        labels = {b.label for b in compiled.program.main}
        assert set(compiled.blocks) == labels

    def test_original_lengths_positive(self, compiled):
        for comp in compiled.blocks.values():
            assert comp.original_length > 0

    def test_speculated_blocks_have_schedules_and_baselines(self, compiled):
        assert compiled.speculated_labels
        for label in compiled.speculated_labels:
            comp = compiled.block(label)
            assert comp.spec_schedule is not None
            assert comp.baseline is not None
            assert comp.predicted_load_ids

    def test_predicted_load_ids_refer_to_original_loads(self, compiled):
        for label in compiled.speculated_labels:
            comp = compiled.block(label)
            block = compiled.program.main.block(label)
            load_ids = {op.op_id for op in block.loads()}
            assert set(comp.predicted_load_ids) <= load_ids

    def test_run_for_is_memoised(self, compiled):
        label = compiled.speculated_labels[0]
        comp = compiled.block(label)
        n = len(comp.predicted_load_ids)
        first = comp.run_for((True,) * n)
        second = comp.run_for((True,) * n)
        assert first is second

    def test_run_for_pattern_length_checked(self, compiled):
        comp = compiled.block(compiled.speculated_labels[0])
        with pytest.raises(ValueError, match="pattern"):
            comp.run_for((True,) * 7)

    def test_run_for_unspeculated_block_rejected(self, compiled):
        plain = next(
            c for c in compiled.blocks.values() if not c.speculated
        )
        with pytest.raises(RuntimeError, match="not speculated"):
            plain.run_for(())

    def test_weighted_fraction_bounds(self, compiled):
        best = compiled.weighted_length_fraction(best=True)
        worst = compiled.weighted_length_fraction(best=False)
        assert 0 < best < 1
        assert best <= worst


class TestDynamicSimulation:
    @pytest.fixture(scope="class")
    def result(self, compiled):
        return simulate_program(compiled)

    def test_class_cycles_partition_total(self, result):
        assert sum(result.cycles_by_class.values()) == result.cycles_proposed

    def test_class_instances_partition_blocks(self, result):
        assert sum(result.instances_by_class.values()) == result.dynamic_blocks

    def test_nopred_equals_sum_of_original_lengths(self, result, compiled):
        expected = sum(
            compiled.block(label).original_length * count
            for label, count in result_blocks(result, compiled).items()
        )
        assert result.cycles_nopred == expected

    def test_proposed_not_slower_than_nopred(self, result):
        assert result.cycles_proposed <= result.cycles_nopred
        assert result.speedup_proposed >= 1.0

    def test_proposed_beats_baseline(self, result):
        assert result.cycles_proposed <= result.cycles_baseline

    def test_prediction_accounting(self, result):
        assert 0 <= result.mispredictions <= result.predictions
        assert 0.0 <= result.prediction_accuracy <= 1.0

    def test_histogram_covers_speculated_instances(self, result):
        speculated_instances = sum(
            count
            for outcome, count in result.instances_by_class.items()
            if outcome is not OutcomeClass.NOT_SPECULATED
        )
        assert sum(result.length_delta_histogram.values()) == speculated_instances

    def test_time_fractions_sum_to_one(self, result):
        total = sum(result.time_fraction(c) for c in OutcomeClass)
        assert total == pytest.approx(1.0)

    def test_icache_modelling_only_adds_cycles(self, compiled):
        plain = simulate_program(compiled)
        cached = simulate_program(compiled, model_icache=True)
        assert cached.cycles_proposed >= plain.cycles_proposed
        assert cached.cycles_baseline >= plain.cycles_baseline
        assert cached.baseline_icache_cycles >= cached.proposed_icache_cycles


def result_blocks(result, compiled):
    """Reconstruct dynamic block counts from the profile (the simulation
    executes the same deterministic program as the profiling run)."""
    return {
        label: compiled.profile.blocks.count(label) for label in compiled.blocks
    }
