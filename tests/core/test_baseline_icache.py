"""Tests for the statically-recovered baseline ([4]) and the i-cache."""

import pytest

from repro.core.baseline import build_baseline_block, simulate_baseline_block
from repro.core.icache import CodeLayout, ICacheConfig, InstructionCache
from repro.core.machine_sim import simulate_best_case, simulate_worst_case
from repro.core.specsched import schedule_speculative
from repro.core.speculation import transform_block
from repro.ir.builder import FunctionBuilder
from repro.sched.list_scheduler import schedule_block


@pytest.fixture
def spec_and_machine(m4):
    fb = FunctionBuilder("f")
    fb.block("entry")
    fb.mov("p", 100)
    load = fb.load("a", "p")
    fb.add("b", "a", 1)
    fb.mul("c", "b", "b")
    fb.store("c", "p", offset=10)
    fb.halt()
    block = fb.build().block("entry")
    spec = transform_block(block, m4, [load])
    return spec, m4, schedule_block(block, m4).length


class TestCompensationBlocks:
    def test_one_block_per_prediction(self, spec_and_machine):
        spec, m4, orig = spec_and_machine
        baseline = build_baseline_block(spec, m4, original_length=orig)
        assert set(baseline.compensation) == set(spec.ldpred_ids)

    def test_compensation_contains_the_speculated_ops(self, spec_and_machine):
        spec, m4, orig = spec_and_machine
        baseline = build_baseline_block(spec, m4, original_length=orig)
        comp = baseline.compensation[spec.ldpred_ids[0]]
        assert comp.op_count == 2  # add and mul
        # dependent ops schedule serially: add(1) then mul(3)
        assert comp.length == 4
        assert baseline.static_comp_ops == 2

    def test_code_growth_reported(self, spec_and_machine):
        spec, m4, orig = spec_and_machine
        baseline = build_baseline_block(spec, m4, original_length=orig)
        assert baseline.static_comp_ops > 0


class TestBaselineTiming:
    def test_correct_prediction_costs_main_schedule_only(self, spec_and_machine):
        spec, m4, orig = spec_and_machine
        baseline = build_baseline_block(spec, m4, original_length=orig)
        run = simulate_baseline_block(
            baseline, {spec.ldpred_ids[0]: True}, m4
        )
        assert run.effective_length == baseline.main_length
        assert run.compensation_cycles == 0
        assert run.branch_cycles == 0

    def test_misprediction_pays_serial_recovery_and_branches(self, spec_and_machine):
        spec, m4, orig = spec_and_machine
        baseline = build_baseline_block(spec, m4, original_length=orig)
        run = simulate_baseline_block(
            baseline, {spec.ldpred_ids[0]: False}, m4
        )
        comp = baseline.compensation[spec.ldpred_ids[0]]
        assert run.compensation_cycles == comp.length
        assert run.branch_cycles == 2 * m4.branch_penalty
        assert run.effective_length == (
            baseline.main_length + comp.length + 2 * m4.branch_penalty
        )

    def test_proposed_beats_baseline_on_mispredict(self, spec_and_machine):
        """The paper's headline comparison: parallel recovery beats the
        serial statically scheduled recovery."""
        spec, m4, orig = spec_and_machine
        baseline = build_baseline_block(spec, m4, original_length=orig)
        spec_schedule = schedule_speculative(spec, m4, original_length=orig)
        proposed = simulate_worst_case(spec_schedule)
        static = simulate_baseline_block(
            baseline, {l: False for l in spec.ldpred_ids}, m4
        )
        assert proposed.effective_length < static.effective_length

    def test_equal_on_all_correct(self, spec_and_machine):
        spec, m4, orig = spec_and_machine
        baseline = build_baseline_block(spec, m4, original_length=orig)
        spec_schedule = schedule_speculative(spec, m4, original_length=orig)
        proposed = simulate_best_case(spec_schedule)
        static = simulate_baseline_block(
            baseline, {l: True for l in spec.ldpred_ids}, m4
        )
        assert proposed.effective_length == static.effective_length

    def test_missing_outcomes_rejected(self, spec_and_machine):
        spec, m4, orig = spec_and_machine
        baseline = build_baseline_block(spec, m4, original_length=orig)
        with pytest.raises(ValueError, match="missing outcomes"):
            simulate_baseline_block(baseline, {}, m4)


class TestInstructionCache:
    def test_cold_misses(self):
        cache = InstructionCache(ICacheConfig(lines=4, miss_penalty=5))
        assert cache.access_range(0, 2) == 10
        assert cache.misses == 2

    def test_hits_after_warmup(self):
        cache = InstructionCache(ICacheConfig(lines=4, miss_penalty=5))
        cache.access_range(0, 2)
        assert cache.access_range(0, 2) == 0
        assert cache.miss_rate == pytest.approx(0.5)

    def test_conflict_eviction(self):
        cache = InstructionCache(ICacheConfig(lines=2, miss_penalty=1))
        cache.access_range(0, 1)     # line 0 -> index 0
        cache.access_range(2, 1)     # line 2 -> index 0: evicts line 0
        assert cache.access_range(0, 1) == 1  # miss again

    def test_invalid_access(self):
        cache = InstructionCache()
        with pytest.raises(ValueError):
            cache.access_range(0, 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ICacheConfig(lines=0)

    def test_lines_for(self):
        config = ICacheConfig(ops_per_line=4)
        assert config.lines_for(1) == 1
        assert config.lines_for(4) == 1
        assert config.lines_for(5) == 2

    def test_reset(self):
        cache = InstructionCache()
        cache.access_range(0, 3)
        cache.reset()
        assert cache.accesses == 0 and cache.misses == 0


class TestCodeLayout:
    def test_contiguous_placement(self):
        layout = CodeLayout(ICacheConfig(ops_per_line=4))
        first = layout.place("a", 8)   # 2 lines
        second = layout.place("b", 1)  # 1 line
        assert first == (0, 2)
        assert second == (2, 1)
        assert layout.total_lines == 3

    def test_duplicate_placement_rejected(self):
        layout = CodeLayout()
        layout.place("a", 1)
        with pytest.raises(ValueError, match="already placed"):
            layout.place("a", 1)

    def test_missing_block(self):
        with pytest.raises(KeyError, match="never placed"):
            CodeLayout().range_of("ghost")

    def test_fetch_through_cache(self):
        config = ICacheConfig(lines=8, miss_penalty=3)
        layout = CodeLayout(config)
        cache = InstructionCache(config)
        layout.place("main", 4)
        assert layout.fetch(cache, "main") == 3
        assert layout.fetch(cache, "main") == 0

    def test_pollution_scenario(self):
        """Compensation blocks evict main code: the paper's cache story."""
        config = ICacheConfig(lines=2, ops_per_line=4, miss_penalty=1)
        layout = CodeLayout(config)
        polluted = InstructionCache(config)
        clean = InstructionCache(config)
        layout.place("main", 8)   # 2 lines: fills the cache
        layout.place("comp", 8)   # 2 lines: aliases main's lines
        # Clean machine: main stays resident.
        layout.fetch(clean, "main")
        assert layout.fetch(clean, "main") == 0
        # Polluted machine: recovery evicts main every time.
        layout.fetch(polluted, "main")
        layout.fetch(polluted, "comp")
        assert layout.fetch(polluted, "main") == 2
