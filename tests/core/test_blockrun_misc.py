"""Small-surface tests: BlockRun presentation, ProgramSimResult helpers,
and the asm formatting of compiler-introduced forms."""

import pytest

from repro.core.machine_sim import simulate_block
from repro.core.metrics import OutcomeClass
from repro.core.program_sim import ProgramSimResult
from repro.ir.asm import format_operation_asm
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation, Reg


class TestBlockRunPresentation:
    def test_str(self, paper_example):
        run = paper_example.scenarios["r7 mispredicted"]
        text = str(run)
        assert "1/2 mispredicted" in text
        assert "cycles" in text

    def test_classification_flags(self, paper_example):
        runs = paper_example.scenarios
        assert runs["both correct"].all_correct
        assert not runs["both correct"].all_incorrect
        assert runs["both mispredicted"].all_incorrect
        mixed = runs["r7 mispredicted"]
        assert not mixed.all_correct and not mixed.all_incorrect

    def test_untraced_run_carries_no_events(self, paper_example):
        sched = paper_example.spec_schedule
        outcomes = {l: True for l in sched.spec.ldpred_ids}
        run = simulate_block(sched, outcomes)
        assert run.trace == ()
        assert run.issue_times == ()
        assert run.cc_events == ()


class TestProgramSimResultHelpers:
    def test_empty_result_defaults(self):
        result = ProgramSimResult(program_name="p", machine_name="m")
        assert result.speedup_proposed == 1.0
        assert result.speedup_baseline == 1.0
        assert result.speedup_squash == 1.0
        assert result.prediction_accuracy == 0.0
        assert result.time_fraction(OutcomeClass.ALL_CORRECT) == 0.0
        assert result.class_length_fraction(OutcomeClass.MIXED) == 1.0
        assert result.baseline_compensation_fraction == 0.0

    def test_class_length_fraction(self):
        result = ProgramSimResult(program_name="p", machine_name="m")
        result.cycles_by_class[OutcomeClass.ALL_CORRECT] = 80
        result.original_cycles_by_class[OutcomeClass.ALL_CORRECT] = 100
        assert result.class_length_fraction(OutcomeClass.ALL_CORRECT) == 0.8


class TestPredictionFormAsm:
    def test_ldpred_formats(self):
        op = Operation(opcode=Opcode.LDPRED, dest=Reg("r4"))
        assert format_operation_asm(op) == "ldpred r4"

    def test_chkpred_formats_like_a_load(self):
        op = Operation(
            opcode=Opcode.CHKPRED, dest=Reg("r4"), srcs=(Reg("r3"),), offset=8
        )
        assert format_operation_asm(op) == "chkpred r4, [r3+8]"

    def test_prediction_forms_do_not_parse(self):
        from repro.ir.asm import AsmSyntaxError, parse_operation

        with pytest.raises(AsmSyntaxError):
            parse_operation("ldpred r4")
        with pytest.raises(AsmSyntaxError):
            parse_operation("chkpred r4, [r3]")
