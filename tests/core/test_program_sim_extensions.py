"""Tests for the dynamic-simulation extensions: finite VP table capacity
and confidence-gated (dual-version) speculation."""

import pytest

from repro.core.metrics import OutcomeClass, compile_program
from repro.core.program_sim import simulate_program
from repro.machine.configs import PLAYDOH_4W
from repro.predict.confidence import ConfidenceConfig, ConfidenceEstimator
from repro.profiling.profile_run import profile_program
from repro.workloads.suite import load_benchmark


@pytest.fixture(scope="module")
def compiled():
    program = load_benchmark("m88ksim", scale=0.4)
    profile = profile_program(program)
    return compile_program(program, PLAYDOH_4W, profile)


class TestTableCapacity:
    def test_unbounded_table_equals_raw_predictor(self, compiled):
        raw = simulate_program(compiled)
        tabled = simulate_program(compiled, table_capacity=1 << 16)
        # A huge direct-mapped table has no conflicts for a handful of
        # static loads, so the accounting is identical.
        assert tabled.cycles_proposed == raw.cycles_proposed
        assert tabled.mispredictions == raw.mispredictions
        assert tabled.table_tag_misses == 0

    @pytest.fixture(scope="class")
    def multi_load_compiled(self):
        # ijpeg's dct loop predicts two loads, so a one-entry table
        # thrashes between them on every iteration.
        program = load_benchmark("ijpeg", scale=0.4)
        profile = profile_program(program)
        return compile_program(program, PLAYDOH_4W, profile)

    def test_tiny_table_causes_tag_misses(self, multi_load_compiled):
        result = simulate_program(multi_load_compiled, table_capacity=1)
        assert result.table_tag_misses > 0

    def test_capacity_never_helps(self, multi_load_compiled):
        unbounded = simulate_program(multi_load_compiled)
        tiny = simulate_program(multi_load_compiled, table_capacity=1)
        assert tiny.mispredictions >= unbounded.mispredictions
        assert tiny.cycles_proposed >= unbounded.cycles_proposed


class TestConfidenceGating:
    def test_gated_instances_counted(self, compiled):
        # A hair-trigger config that distrusts everything initially.
        estimator = ConfidenceEstimator(
            ConfidenceConfig(max_count=15, increment=1, decrement=8, threshold=10)
        )
        result = simulate_program(compiled, confidence=estimator)
        assert result.gated_instances > 0

    def test_gated_instances_cost_original_length(self, compiled):
        # With an unsatisfiable threshold everything gates: the proposed
        # machine degenerates to the no-prediction machine.
        estimator = ConfidenceEstimator(
            ConfidenceConfig(max_count=15, increment=0o1, decrement=1, threshold=15)
        )
        # make it unsatisfiable by huge decrement on every miss and never
        # reaching the ceiling: threshold == max_count with decrement 1
        # still reachable, so use a custom estimator that always says no.
        class NeverConfident(ConfidenceEstimator):
            def confident(self, key):
                return False

        result = simulate_program(compiled, confidence=NeverConfident())
        assert result.cycles_proposed == result.cycles_nopred
        assert result.predictions == 0
        assert result.time_fraction(OutcomeClass.ALL_CORRECT) == 0.0

    def test_always_confident_matches_ungated(self, compiled):
        class AlwaysConfident(ConfidenceEstimator):
            def confident(self, key):
                return True

        gated = simulate_program(compiled, confidence=AlwaysConfident())
        plain = simulate_program(compiled)
        assert gated.cycles_proposed == plain.cycles_proposed
        assert gated.gated_instances == 0

    def test_gating_trades_upside_for_safety(self, compiled):
        """A sane confidence config reduces mispredictions per prediction
        made (it skips cold/burned loads) at some cost in coverage."""
        estimator = ConfidenceEstimator(
            ConfidenceConfig(max_count=15, increment=1, decrement=6, threshold=4)
        )
        gated = simulate_program(compiled, confidence=estimator)
        plain = simulate_program(compiled)
        assert gated.predictions < plain.predictions
        if gated.predictions:
            assert gated.prediction_accuracy >= plain.prediction_accuracy - 0.02

    def test_gated_runs_still_consistent(self, compiled):
        estimator = ConfidenceEstimator()
        result = simulate_program(compiled, confidence=estimator)
        assert sum(result.cycles_by_class.values()) == result.cycles_proposed
        assert sum(result.instances_by_class.values()) == result.dynamic_blocks
