"""The paper's worked example (Figures 2/3/7): qualitative claims.

These tests pin the reproduction to the observations the paper makes
about its own example, which are the clearest executable statements of
the architecture's intended behaviour.
"""

import pytest

from repro.core.isa_ext import OpForm


class TestSchedules:
    def test_speculation_shortens_the_schedule(self, paper_example):
        assert (
            paper_example.spec_schedule.length
            < paper_example.original_schedule.length
        )

    def test_ops_10_and_11_are_nonspeculative(self, paper_example):
        spec = paper_example.spec_schedule.spec
        by_dest = {
            op.dest.name: spec.info[op.op_id].form
            for op in spec.operations
            if op.dest is not None
        }
        assert by_dest["r10"] is OpForm.NONSPEC
        assert by_dest["r11"] is OpForm.NONSPEC

    def test_consumers_are_speculated(self, paper_example):
        spec = paper_example.spec_schedule.spec
        by_dest = {
            op.dest.name: spec.info[op.op_id].form
            for op in spec.operations
            if op.dest is not None and spec.info[op.op_id].form is OpForm.SPECULATIVE
        }
        assert set(by_dest) == {"r5", "r6", "r8", "r9"}

    def test_two_predictions(self, paper_example):
        assert paper_example.spec_schedule.spec.num_predictions == 2


class TestScenarioTiming:
    def test_both_correct_runs_at_static_length(self, paper_example):
        run = paper_example.scenarios["both correct"]
        assert run.effective_length == paper_example.spec_schedule.length
        assert run.stall_cycles == 0
        assert run.executed == 0
        assert run.flushed == 4

    def test_r4_and_both_mispredicted_behave_identically(self, paper_example):
        """Paper: "the code executed on both the engines is identical as
        in the previous case" — the compensation code is the same whether
        load 4 or both loads mispredict, because ops 8 and 9 depend on
        both chains."""
        r4 = paper_example.scenarios["r4 mispredicted"]
        both = paper_example.scenarios["both mispredicted"]
        assert r4.effective_length == both.effective_length
        assert r4.executed == both.executed == 4
        assert r4.stall_cycles == both.stall_cycles

    def test_r7_case_recovers_fewer_ops_in_same_time(self, paper_example):
        """Paper: the r4 case has *larger* compensation code, yet the same
        schedule length, because its recovery starts earlier."""
        r7 = paper_example.scenarios["r7 mispredicted"]
        r4 = paper_example.scenarios["r4 mispredicted"]
        assert r7.executed == 2  # only ops 8 and 9 depend on r7
        assert r4.executed == 4  # ops 5, 6, 8, 9 depend on r4
        assert r7.effective_length == r4.effective_length

    def test_correctly_speculated_ops_flush(self, paper_example):
        r7 = paper_example.scenarios["r7 mispredicted"]
        assert r7.flushed == 2  # ops 5 and 6 (r4 chain) verified correct

    def test_every_scenario_counts_two_predictions(self, paper_example):
        for run in paper_example.scenarios.values():
            assert run.predictions == 2

    def test_misprediction_counts(self, paper_example):
        assert paper_example.scenarios["both correct"].mispredictions == 0
        assert paper_example.scenarios["r7 mispredicted"].mispredictions == 1
        assert paper_example.scenarios["r4 mispredicted"].mispredictions == 1
        assert paper_example.scenarios["both mispredicted"].mispredictions == 2


class TestTraces:
    def test_trace_shows_parallel_recovery(self, paper_example):
        from repro.obs.trace import CheckEvent, ExecuteEvent

        run = paper_example.scenarios["r4 mispredicted"]
        assert any(isinstance(e, ExecuteEvent) for e in run.trace)
        assert any(
            isinstance(e, CheckEvent) and not e.correct for e in run.trace
        )
        # Rendered text keeps the historical engine-prefixed wording.
        text = "\n".join(str(e) for e in run.trace)
        assert "CCE: execute" in text
        assert "MISPREDICT" in text

    def test_flushes_precede_executions_in_r7_case(self, paper_example):
        """Figure 3(c): recovery starts only after the correctly
        speculated ops are flushed out of the CCB head."""
        from repro.obs.trace import ExecuteEvent, FlushEvent

        run = paper_example.scenarios["r7 mispredicted"]
        first_flush = min(
            e.cycle for e in run.trace if isinstance(e, FlushEvent)
        )
        first_exec = min(
            e.cycle for e in run.trace if isinstance(e, ExecuteEvent)
        )
        assert first_flush < first_exec

    def test_render_includes_all_scenarios(self, paper_example):
        from repro.evaluation.paper_example import render

        text = render(paper_example)
        for name in paper_example.scenarios:
            assert name in text
