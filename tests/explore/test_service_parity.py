"""A sweep's report artifact must be identical local vs --service.

The acceptance bar for the explore driver riding the sweep service: the
same design space executed runner-less, through a local Runner, and
through an in-process broker + worker fleet must serialise to the same
bytes — machines travel as canonical spec JSON on the wire and rebuild
into the exact machines the local run used.
"""

from __future__ import annotations

import threading

import pytest

from repro.explore.driver import explore_points
from repro.explore.report import dump_report, report_payload
from repro.explore.space import Axis, DesignSpace
from repro.machine.configs import PLAYDOH_4W_SPEC
from repro.service.backends import SQLiteCache
from repro.service.broker import Broker
from repro.service.client import ServiceClient, ServiceRunner
from repro.service.queue import SweepQueue
from repro.service.worker import Worker

SCALE = 0.05
BENCHMARKS = ["compress"]


@pytest.fixture()
def space():
    return DesignSpace(
        base=PLAYDOH_4W_SPEC,
        axes=(Axis.parse("issue_width=2,4"), Axis.parse("threshold=0.5,0.8")),
    )


class TestServiceParity:
    def test_artifact_identical_local_vs_service(self, tmp_path, space):
        local = explore_points(
            space.grid(), scale=SCALE, benchmarks=BENCHMARKS
        )

        cache = SQLiteCache(tmp_path / "cache.db")
        queue = SweepQueue(tmp_path / "queue.db", lease_timeout=30.0)
        broker = Broker(queue, cache).start()
        workers, threads = [], []
        try:
            for n in range(2):
                worker = Worker(
                    ServiceClient(broker.url),
                    cache,
                    name=f"explore-w{n}",
                    poll=0.05,
                )
                thread = threading.Thread(target=worker.run, daemon=True)
                thread.start()
                workers.append(worker)
                threads.append(thread)

            runner = ServiceRunner(broker.url, poll=0.05)
            try:
                remote = explore_points(
                    space.grid(), scale=SCALE, benchmarks=BENCHMARKS,
                    runner=runner,
                )
            finally:
                runner.close()
        finally:
            for worker in workers:
                worker.stop()
            for thread in threads:
                thread.join(timeout=10.0)
            broker.stop()
            cache.close()

        local_text = dump_report(
            report_payload(space, local, SCALE, BENCHMARKS)
        )
        remote_text = dump_report(
            report_payload(space, remote, SCALE, BENCHMARKS)
        )
        assert remote_text == local_text
