"""The relative hardware-cost model behind the Pareto frontier."""

from __future__ import annotations

import pytest

from repro.explore.cost import (
    cost_breakdown,
    machine_cost,
    predictor_cost,
)
from repro.machine.configs import PLAYDOH_4W_SPEC, PLAYDOH_8W_SPEC
from repro.machine.predictor import PredictorSpec


class TestMachineCost:
    def test_positive(self):
        assert machine_cost(PLAYDOH_4W_SPEC) > 0

    def test_wider_machine_costs_more(self):
        assert machine_cost(PLAYDOH_8W_SPEC) > machine_cost(PLAYDOH_4W_SPEC)

    def test_bounded_buffers_cost_less_than_unbounded(self):
        bounded = PLAYDOH_4W_SPEC.override(ccb_capacity=8, ovb_capacity=8)
        assert machine_cost(bounded) < machine_cost(PLAYDOH_4W_SPEC)

    def test_monotone_in_each_capacity(self):
        small = PLAYDOH_4W_SPEC.override(ccb_capacity=8)
        large = PLAYDOH_4W_SPEC.override(ccb_capacity=64)
        assert machine_cost(small) < machine_cost(large)

    def test_breakdown_sums_to_total(self):
        for spec in (PLAYDOH_4W_SPEC, PLAYDOH_8W_SPEC):
            parts = cost_breakdown(spec)
            assert sum(parts.values()) == pytest.approx(machine_cost(spec))

    def test_weight_overrides(self):
        base = machine_cost(PLAYDOH_4W_SPEC)
        heavier = machine_cost(PLAYDOH_4W_SPEC, sync_bit_weight=1.0)
        assert heavier > base


class TestPredictorCost:
    def test_bounded_table_cheaper_than_unbounded(self):
        bounded = PredictorSpec(table_entries=256)
        assert predictor_cost(bounded) < predictor_cost(PredictorSpec())

    def test_stride_cheaper_than_hybrid(self):
        stride = PredictorSpec(kind="stride", table_entries=1024)
        hybrid = PredictorSpec(kind="hybrid", table_entries=1024)
        assert predictor_cost(stride) < predictor_cost(hybrid)

    def test_fcm_pays_for_its_history_table(self):
        small = PredictorSpec(kind="fcm", table_entries=256, table_bits=10)
        large = PredictorSpec(kind="fcm", table_entries=256, table_bits=16)
        assert predictor_cost(small) < predictor_cost(large)
