"""Explore driver: point evaluation, Pareto frontier, report artifact."""

from __future__ import annotations

import json

import pytest

from repro.explore.driver import (
    BenchmarkResult,
    PointResult,
    explore_points,
    pareto_frontier,
)
from repro.explore.report import (
    REPORT_SCHEMA_VERSION,
    dump_report,
    load_report,
    render_frontier,
    render_table,
    report_payload,
)
from repro.explore.space import Axis, DesignSpace
from repro.machine.configs import PLAYDOH_4W_SPEC

SCALE = 0.05
BENCHMARKS = ["compress"]


def synthetic(label: str, cost: float, speedup: float) -> PointResult:
    return PointResult(
        label=label,
        machine_name=label,
        fingerprint="0" * 64,
        assignment=(),
        cost=cost,
        speedup=speedup,
        accuracy=0.9,
        benchmarks=(),
    )


class TestParetoFrontier:
    def test_dominated_points_drop(self):
        results = [
            synthetic("cheap-slow", 1.0, 1.0),
            synthetic("cheap-fast", 1.0, 1.2),
            synthetic("dear-slow", 2.0, 1.1),   # dominated by cheap-fast
            synthetic("dear-fast", 2.0, 1.5),
        ]
        frontier = pareto_frontier(results)
        assert [r.label for r in frontier] == ["cheap-fast", "dear-fast"]

    def test_frontier_is_cheapest_first(self):
        results = [
            synthetic("b", 2.0, 1.4),
            synthetic("a", 1.0, 1.2),
        ]
        assert [r.label for r in pareto_frontier(results)] == ["a", "b"]

    def test_exact_ties_keep_one_point(self):
        results = [
            synthetic("first", 1.0, 1.2),
            synthetic("second", 1.0, 1.2),
        ]
        assert len(pareto_frontier(results)) == 1

    def test_empty(self):
        assert pareto_frontier([]) == []


@pytest.fixture(scope="module")
def sweep():
    """A tiny real sweep shared by the driver/report tests."""
    axes = (Axis.parse("issue_width=2,4"), Axis.parse("threshold=0.5,0.8"))
    space = DesignSpace(base=PLAYDOH_4W_SPEC, axes=axes)
    results = explore_points(
        space.grid(), scale=SCALE, benchmarks=BENCHMARKS
    )
    return space, results


class TestExplorePoints:
    def test_one_result_per_point_in_order(self, sweep):
        space, results = sweep
        assert [r.label for r in results] == [p.label for p in space.grid()]

    def test_results_carry_real_simulations(self, sweep):
        _, results = sweep
        for r in results:
            assert len(r.benchmarks) == 1
            b = r.benchmarks[0]
            assert b.benchmark == "compress"
            assert b.cycles_nopred > 0 and b.cycles_proposed > 0
            assert r.speedup == pytest.approx(b.speedup)
            assert 0.0 <= r.accuracy <= 1.0
            assert r.cost > 0

    def test_speculation_only_points_share_machine_fingerprints(self, sweep):
        _, results = sweep
        by_width = {}
        for r in results:
            width = dict(r.assignment)["issue_width"]
            by_width.setdefault(width, set()).add(r.fingerprint)
        # Two thresholds per width map onto ONE machine each.
        assert all(len(prints) == 1 for prints in by_width.values())
        assert len({p for prints in by_width.values() for p in prints}) == 2

    def test_threshold_changes_the_outcome(self, sweep):
        _, results = sweep
        by_label = {r.label: r for r in results}
        low = by_label["issue_width=4/threshold=0.5"]
        high = by_label["issue_width=4/threshold=0.8"]
        # A stricter threshold speculates fewer loads; accuracy rises.
        assert high.accuracy >= low.accuracy

    def test_runner_path_matches_runnerless(self, sweep):
        from repro.runner import Runner

        space, local = sweep
        runner = Runner(jobs=1, cache=None)
        try:
            with_runner = explore_points(
                space.grid(), scale=SCALE, benchmarks=BENCHMARKS, runner=runner
            )
        finally:
            runner.close()
        payload_a = report_payload(space, local, SCALE, BENCHMARKS)
        payload_b = report_payload(space, with_runner, SCALE, BENCHMARKS)
        assert dump_report(payload_a) == dump_report(payload_b)


class TestReport:
    def test_payload_schema_and_round_trip(self, sweep):
        space, results = sweep
        payload = report_payload(space, results, SCALE, BENCHMARKS)
        text = dump_report(payload)
        assert load_report(text) == payload
        assert payload["schema"] == REPORT_SCHEMA_VERSION
        assert payload["base_machine"] == PLAYDOH_4W_SPEC.canonical()
        assert len(payload["points"]) == 4
        assert set(payload["frontier"]) == {
            p["label"] for p in payload["points"] if p["pareto"]
        }

    def test_dump_is_deterministic(self, sweep):
        space, results = sweep
        a = dump_report(report_payload(space, results, SCALE, BENCHMARKS))
        b = dump_report(report_payload(space, results, SCALE, BENCHMARKS))
        assert a == b
        json.loads(a)  # valid JSON

    def test_load_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            load_report(json.dumps({"schema": REPORT_SCHEMA_VERSION + 1}))

    def test_render_table_and_frontier(self, sweep):
        _, results = sweep
        table = render_table(results)
        assert "Pareto" in table
        for r in results:
            assert r.label in table
        assert "cost" in render_frontier(results)


class TestCli:
    def test_end_to_end_artifact(self, tmp_path, capsys):
        from repro.explore.cli import main

        out = tmp_path / "sweep.json"
        code = main(
            [
                "--axis", "threshold=0.5,0.8",
                "--scale", str(SCALE),
                "--benchmarks", "compress",
                "--no-cache",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = load_report(out.read_text(encoding="utf-8"))
        assert [p["label"] for p in payload["points"]] == [
            "threshold=0.5",
            "threshold=0.8",
        ]
        stdout = capsys.readouterr().out
        assert "Pareto" in stdout

    def test_unknown_axis_is_a_clean_error(self, capsys):
        from repro.explore.cli import main

        assert main(["--axis", "frobnicate=1"]) == 2
        assert "unknown axis" in capsys.readouterr().err

    def test_no_axes_is_a_clean_error(self, capsys):
        from repro.explore.cli import main

        assert main([]) == 2
        assert "no axes" in capsys.readouterr().err
