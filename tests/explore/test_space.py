"""Design-space declaration: axes, grids, sampling, point derivation."""

from __future__ import annotations

import pytest

from repro.core.speculation import SpeculationConfig
from repro.explore.space import Axis, DesignSpace, parse_axis_value
from repro.ir.opcodes import FUClass, Opcode
from repro.machine.configs import PLAYDOH_4W_SPEC


def space(*axes: str) -> DesignSpace:
    return DesignSpace(
        base=PLAYDOH_4W_SPEC, axes=tuple(Axis.parse(a) for a in axes)
    )


class TestAxisParsing:
    def test_parse_int_axis(self):
        axis = Axis.parse("issue_width=2,4,8")
        assert axis.name == "issue_width"
        assert axis.values == (2, 4, 8)

    def test_parse_threshold_as_float(self):
        assert Axis.parse("threshold=0.5,0.8").values == (0.5, 0.8)

    def test_parse_predictor_kind_as_string(self):
        assert Axis.parse("predictor.kind=stride,hybrid").values == (
            "stride",
            "hybrid",
        )

    def test_none_aliases(self):
        for alias in ("none", "inf", "unbounded", "NONE"):
            assert parse_axis_value("ccb_capacity", alias) is None

    def test_missing_equals_is_an_error(self):
        with pytest.raises(ValueError, match="name=v1,v2"):
            Axis.parse("issue_width")

    def test_empty_values_is_an_error(self):
        with pytest.raises(ValueError, match="no values"):
            Axis.parse("issue_width=")

    def test_unknown_axis_is_an_error(self):
        with pytest.raises(ValueError, match="unknown axis"):
            Axis.parse("frobnicate=1,2")

    def test_bad_unit_class_is_an_error(self):
        with pytest.raises(ValueError):
            Axis.parse("units.vector=1,2")

    def test_bad_opcode_is_an_error(self):
        with pytest.raises(ValueError):
            Axis.parse("latency.teleport=1")

    def test_bad_predictor_field_is_an_error(self):
        with pytest.raises(ValueError, match="predictor"):
            Axis.parse("predictor.magic=1")


class TestDesignSpace:
    def test_grid_is_full_cross_product_in_declared_order(self):
        s = space("issue_width=2,4", "threshold=0.5,0.8")
        labels = [p.label for p in s.grid()]
        assert labels == [
            "issue_width=2/threshold=0.5",
            "issue_width=2/threshold=0.8",
            "issue_width=4/threshold=0.5",
            "issue_width=4/threshold=0.8",
        ]
        assert s.size == 4

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            space("issue_width=2", "issue_width=4")

    def test_sample_is_seeded_and_a_subset_of_the_grid(self):
        s = space("issue_width=2,4,8", "threshold=0.5,0.65,0.8")
        first = s.sample(4, seed=7)
        again = s.sample(4, seed=7)
        other = s.sample(4, seed=8)
        assert [p.label for p in first] == [p.label for p in again]
        assert [p.label for p in first] != [p.label for p in other]
        grid_labels = [p.label for p in s.grid()]
        assert all(p.label in grid_labels for p in first)

    def test_sample_larger_than_grid_returns_grid(self):
        s = space("issue_width=2,4")
        assert len(s.sample(10)) == 2


class TestPointDerivation:
    def test_machine_axes_change_the_spec(self):
        point = space("issue_width=2,4").point((("issue_width", 2),))
        assert point.spec.issue_width == 2
        assert point.spec_config == SpeculationConfig()

    def test_fu_scale_multiplies_every_unit(self):
        point = space("fu_scale=1,2").point((("fu_scale", 2),))
        for fu, n in PLAYDOH_4W_SPEC.units.items():
            assert point.spec.units[fu] == 2 * n
        assert point.spec.issue_width == PLAYDOH_4W_SPEC.issue_width

    def test_unit_and_latency_axes(self):
        point = space("units.mem=2", "latency.load=5").point(
            (("units.mem", 2), ("latency.load", 5))
        )
        assert point.spec.units[FUClass.MEM] == 2
        assert point.spec.latencies[Opcode.LOAD] == 5

    def test_predictor_axes(self):
        point = space("predictor.kind=stride", "predictor.table_entries=1024").point(
            (("predictor.kind", "stride"), ("predictor.table_entries", 1024))
        )
        assert point.spec.predictor.kind == "stride"
        assert point.spec.predictor.table_entries == 1024

    def test_speculation_axes_leave_the_machine_alone(self):
        s = space("threshold=0.5,0.8", "max_predictions=1,2")
        a = s.point((("threshold", 0.5), ("max_predictions", 1)))
        b = s.point((("threshold", 0.8), ("max_predictions", 2)))
        # Speculation-only sweeps share one machine fingerprint so their
        # compile jobs dedupe; the configs differ.
        assert a.fingerprint() == b.fingerprint()
        assert a.spec.name == PLAYDOH_4W_SPEC.name
        assert a.spec_config.threshold == 0.5
        assert b.spec_config.max_predictions == 2

    def test_machine_axes_rename_the_machine(self):
        s = space("issue_width=2,4", "threshold=0.5,0.8")
        point = s.point((("issue_width", 2), ("threshold", 0.5)))
        assert point.spec.name == "playdoh-4w@issue_width=2"
        assert point.label == "issue_width=2/threshold=0.5"

    def test_unbounded_value_formats_as_inf(self):
        point = space("ccb_capacity=8,none").point((("ccb_capacity", None),))
        assert point.spec.ccb_capacity is None
        assert point.label == "ccb_capacity=inf"

    def test_empty_space_has_one_base_point(self):
        s = DesignSpace(base=PLAYDOH_4W_SPEC, axes=())
        points = s.grid()
        assert len(points) == 1
        assert points[0].label == "base"
        assert points[0].spec == PLAYDOH_4W_SPEC
