"""Direct unit tests for the list-scheduling priority functions."""

import pytest

from repro.ddg.builder import build_ddg
from repro.ddg.critical_path import analyze
from repro.ir.builder import FunctionBuilder
from repro.sched.priorities import (
    PRIORITY_FACTORIES,
    height_priority,
    slack_priority,
    source_order_priority,
)


@pytest.fixture
def analysed(m4):
    fb = FunctionBuilder("f")
    fb.block("entry")
    load = fb.load("a", "p")     # heads the long chain
    dep = fb.add("b", "a", 1)
    slackful = fb.mov("z", 5)    # independent, lots of slack
    fb.halt()
    block = fb.build().block("entry")
    graph = build_ddg(block, m4)
    return analyze(graph, m4), load, dep, slackful


class TestHeightPriority:
    def test_deeper_op_wins(self, analysed):
        analysis, load, dep, slackful = analysed
        priority = height_priority(analysis)
        assert priority(load.op_id) > priority(slackful.op_id)
        assert priority(load.op_id) > priority(dep.op_id)

    def test_tie_break_prefers_earlier_op(self, analysed):
        analysis, load, dep, slackful = analysed
        priority = height_priority(analysis)
        # equal heights tie-break on smaller op id (earlier program order)
        a, b = sorted([dep.op_id, slackful.op_id])
        if analysis.height[a] == analysis.height[b]:
            assert priority(a) > priority(b)


class TestSlackPriority:
    def test_critical_op_wins(self, analysed):
        analysis, load, dep, slackful = analysed
        priority = slack_priority(analysis)
        assert priority(load.op_id) > priority(slackful.op_id)

    def test_zero_slack_sorts_first(self, analysed):
        analysis, load, dep, slackful = analysed
        assert analysis.slack(load.op_id) == 0
        assert analysis.slack(slackful.op_id) > 0


class TestSourceOrder:
    def test_program_order(self, analysed):
        analysis, load, dep, slackful = analysed
        priority = source_order_priority()
        assert priority(load.op_id) > priority(dep.op_id) > priority(slackful.op_id)


class TestRegistry:
    def test_factories(self, analysed):
        analysis, load, _, _ = analysed
        assert set(PRIORITY_FACTORIES) == {"height", "slack", "source"}
        for factory in PRIORITY_FACTORIES.values():
            priority = factory(analysis)
            assert isinstance(priority(load.op_id), tuple)
