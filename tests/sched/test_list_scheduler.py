"""Unit and property-based tests for the list scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ddg.builder import build_ddg
from repro.ddg.critical_path import analyze
from repro.ir.builder import FunctionBuilder
from repro.ir.opcodes import FUClass
from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W, UNLIMITED
from repro.sched.list_scheduler import ListScheduler, schedule_block


def straightline(emit):
    fb = FunctionBuilder("f")
    fb.block("entry")
    emit(fb)
    fb.halt()
    return fb.build().block("entry")


class TestBasicScheduling:
    def test_every_op_scheduled_once(self, m4, straight_block):
        schedule = schedule_block(straight_block, m4)
        assert len(schedule) == len(straight_block.operations)

    def test_dependences_respected(self, m4, straight_block):
        schedule = schedule_block(straight_block, m4)
        graph = build_ddg(straight_block, m4)
        for edge in graph.edges():
            assert (
                schedule.issue_cycle(edge.dst)
                >= schedule.issue_cycle(edge.src) + edge.weight
            )

    def test_resource_limits_respected(self, m4, straight_block):
        schedule = schedule_block(straight_block, m4)
        for instr in schedule.instructions():
            assert len(instr) <= m4.issue_width
            by_fu = {}
            for slot in instr:
                fu = m4.fu_class(slot.operation.opcode)
                by_fu[fu] = by_fu.get(fu, 0) + 1
            for fu, used in by_fu.items():
                assert used <= m4.units(fu)

    def test_length_meets_dependence_bound(self, unlimited, straight_block):
        schedule = schedule_block(straight_block, unlimited)
        analysis = analyze(build_ddg(straight_block, unlimited), unlimited)
        assert schedule.length == analysis.length

    def test_wider_machine_never_slower(self, straight_block):
        narrow = schedule_block(straight_block, PLAYDOH_4W)
        wide = schedule_block(straight_block, PLAYDOH_8W)
        assert wide.length <= narrow.length

    def test_deterministic(self, m4, straight_block):
        first = schedule_block(straight_block, m4)
        second = schedule_block(straight_block, m4)
        for op in straight_block.operations:
            assert first.issue_cycle(op.op_id) == second.issue_cycle(op.op_id)

    def test_empty_graph(self, m4):
        from repro.ddg.graph import DependenceGraph

        schedule = ListScheduler(m4).schedule_graph("empty", DependenceGraph([]))
        assert schedule.length == 0

    def test_unknown_priority_rejected(self, m4):
        with pytest.raises(ValueError, match="unknown priority"):
            ListScheduler(m4, priority="bogus")

    def test_all_priorities_produce_valid_schedules(self, straight_block):
        graph = build_ddg(straight_block, PLAYDOH_4W)
        for priority in ("height", "slack", "source"):
            schedule = ListScheduler(PLAYDOH_4W, priority=priority).schedule_graph(
                "b", graph
            )
            for edge in graph.edges():
                assert (
                    schedule.issue_cycle(edge.dst)
                    >= schedule.issue_cycle(edge.src) + edge.weight
                )


class TestResourceContention:
    def test_single_mem_unit_serialises_loads(self):
        block = straightline(lambda fb: [fb.load(f"r{i}", "p") for i in range(4)])
        schedule = schedule_block(block, PLAYDOH_4W)  # one MEM unit
        cycles = sorted(
            schedule.issue_cycle(op.op_id) for op in block.operations if op.is_load
        )
        assert cycles == [0, 1, 2, 3]

    def test_two_mem_units_pair_loads(self):
        block = straightline(lambda fb: [fb.load(f"r{i}", "p") for i in range(4)])
        schedule = schedule_block(block, PLAYDOH_8W)  # two MEM units
        cycles = sorted(
            schedule.issue_cycle(op.op_id) for op in block.operations if op.is_load
        )
        assert cycles == [0, 0, 1, 1]

    def test_anti_dependent_op_can_share_cycle(self):
        # write-after-read: the redefinition may issue in the same cycle.
        block = straightline(lambda fb: (
            fb.add("b", "a", 1),
            fb.mov("a", 7),
        ))
        schedule = schedule_block(block, PLAYDOH_8W)
        use, redef = block.operations[0], block.operations[1]
        assert schedule.issue_cycle(redef.op_id) == schedule.issue_cycle(use.op_id)


def _ops_strategy():
    """Strategy: a list of abstract ops over a small register pool."""
    regs = st.sampled_from([f"r{i}" for i in range(6)])
    alu = st.tuples(st.just("alu"), regs, regs, regs)
    load = st.tuples(st.just("load"), regs, regs, st.just(""))
    store = st.tuples(st.just("store"), regs, regs, st.just(""))
    return st.lists(st.one_of(alu, load, store), min_size=1, max_size=25)


@settings(max_examples=60, deadline=None)
@given(ops=_ops_strategy(), wide=st.booleans())
def test_property_random_blocks_schedule_validly(ops, wide):
    """Any random straight-line block yields a dependence- and
    resource-respecting schedule on either machine."""
    fb = FunctionBuilder("f")
    fb.block("entry")
    for kind, a, b, c in ops:
        if kind == "alu":
            fb.add(a, b, c)
        elif kind == "load":
            fb.load(a, b)
        else:
            fb.store(a, b)
    fb.halt()
    block = fb.build().block("entry")

    machine = PLAYDOH_8W if wide else PLAYDOH_4W
    schedule = schedule_block(block, machine)
    graph = build_ddg(block, machine)

    assert len(schedule) == len(block.operations)
    for edge in graph.edges():
        assert (
            schedule.issue_cycle(edge.dst)
            >= schedule.issue_cycle(edge.src) + edge.weight
        )
    for instr in schedule.instructions():
        assert len(instr) <= machine.issue_width
        by_fu = {}
        for slot in instr:
            fu = machine.fu_class(slot.operation.opcode)
            by_fu[fu] = by_fu.get(fu, 0) + 1
        for fu, used in by_fu.items():
            assert used <= machine.units(fu)
    # The schedule is never shorter than the dependence-height bound.
    assert schedule.length >= analyze(graph, machine).length * 0 + max(
        machine.latency(op.opcode) for op in block.operations
    )
