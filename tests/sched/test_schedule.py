"""Unit tests for the schedule data structures."""

import pytest

from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation, Reg
from repro.machine.configs import PLAYDOH_4W
from repro.sched.schedule import Schedule


def mov(dst="a", src="b"):
    return Operation(opcode=Opcode.MOV, dest=Reg(dst), srcs=(Reg(src),))


def load(dst="a", base="p"):
    return Operation(opcode=Opcode.LOAD, dest=Reg(dst), srcs=(Reg(base),))


class TestSchedule:
    def test_place_and_lookup(self):
        s = Schedule("b", PLAYDOH_4W)
        op = mov()
        placed = s.place(op, 2)
        assert placed.cycle == 2
        assert placed.latency == 1
        assert placed.completion == 3
        assert s.issue_cycle(op.op_id) == 2
        assert s.completion_cycle(op.op_id) == 3
        assert op.op_id in s

    def test_latency_from_machine(self):
        s = Schedule("b", PLAYDOH_4W)
        placed = s.place(load(), 0)
        assert placed.latency == 3

    def test_latency_override(self):
        s = Schedule("b", PLAYDOH_4W)
        placed = s.place(load(), 0, latency=7)
        assert placed.completion == 7

    def test_double_place_rejected(self):
        s = Schedule("b", PLAYDOH_4W)
        op = mov()
        s.place(op, 0)
        with pytest.raises(ValueError, match="twice"):
            s.place(op, 1)

    def test_negative_cycle_rejected(self):
        s = Schedule("b", PLAYDOH_4W)
        with pytest.raises(ValueError):
            s.place(mov(), -1)

    def test_length_is_last_completion(self):
        s = Schedule("b", PLAYDOH_4W)
        s.place(load("a"), 0)        # completes at 3
        s.place(mov("c", "d"), 1)    # completes at 2
        assert s.length == 3

    def test_empty_schedule(self):
        s = Schedule("b", PLAYDOH_4W)
        assert s.length == 0
        assert len(s) == 0
        assert s.instructions() == []

    def test_instructions_grouped_by_cycle(self):
        s = Schedule("b", PLAYDOH_4W)
        a = mov("a", "x")
        b = mov("b", "y")
        c = mov("c", "z")
        s.place(a, 0)
        s.place(b, 0)
        s.place(c, 2)
        instrs = s.instructions()
        assert [i.cycle for i in instrs] == [0, 2]
        assert len(instrs[0]) == 2
        assert len(instrs[1]) == 1

    def test_issue_cycles_used(self):
        s = Schedule("b", PLAYDOH_4W)
        s.place(mov("a", "x"), 0)
        s.place(mov("b", "y"), 0)
        s.place(mov("c", "z"), 5)
        assert s.issue_cycles_used == 2

    def test_operations_sorted(self):
        s = Schedule("b", PLAYDOH_4W)
        late = mov("a", "x")
        early = mov("b", "y")
        s.place(late, 3)
        s.place(early, 1)
        assert [p.cycle for p in s.operations] == [1, 3]

    def test_str(self):
        s = Schedule("blk", PLAYDOH_4W)
        s.place(mov(), 0)
        text = str(s)
        assert "blk" in text and "cycle 0" in text
