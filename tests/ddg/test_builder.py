"""Unit tests for dependence-graph construction from blocks."""

import pytest

from repro.ddg.builder import build_ddg
from repro.ddg.graph import DepKind
from repro.ir.block import BasicBlock
from repro.ir.builder import FunctionBuilder
from repro.machine.configs import PLAYDOH_4W


def build_block(emit):
    fb = FunctionBuilder("f")
    fb.block("entry")
    ops = emit(fb)
    fb.halt()
    fb.build()
    return fb._function.block("entry"), ops


def edge_between(graph, src, dst, kind):
    return [
        e for e in graph.successors(src.op_id)
        if e.dst == dst.op_id and e.kind is kind
    ]


class TestRegisterDependences:
    def test_flow_edge_weighted_by_producer_latency(self, m4):
        def emit(fb):
            load = fb.load("a", "p")
            use = fb.add("b", "a", 1)
            return load, use

        block, (load, use) = build_block(emit)
        g = build_ddg(block, m4)
        edges = edge_between(g, load, use, DepKind.FLOW)
        assert len(edges) == 1
        assert edges[0].weight == m4.latency(load.opcode) == 3

    def test_anti_edge_zero_weight(self, m4):
        def emit(fb):
            use = fb.add("b", "a", 1)
            redef = fb.mov("a", 5)
            return use, redef

        block, (use, redef) = build_block(emit)
        g = build_ddg(block, m4)
        edges = edge_between(g, use, redef, DepKind.ANTI)
        assert len(edges) == 1
        assert edges[0].weight == 0

    def test_output_edge(self, m4):
        def emit(fb):
            first = fb.mov("a", 1)
            second = fb.mov("a", 2)
            return first, second

        block, (first, second) = build_block(emit)
        g = build_ddg(block, m4)
        edges = edge_between(g, first, second, DepKind.OUTPUT)
        assert len(edges) == 1
        assert edges[0].weight == 1

    def test_use_after_redefinition_reads_latest(self, m4):
        def emit(fb):
            first = fb.mov("a", 1)
            second = fb.mov("a", 2)
            use = fb.add("b", "a", 1)
            return first, second, use

        block, (first, second, use) = build_block(emit)
        g = build_ddg(block, m4)
        assert edge_between(g, second, use, DepKind.FLOW)
        assert not edge_between(g, first, use, DepKind.FLOW)


class TestMemoryDependences:
    def test_store_orders_later_load(self, m4):
        def emit(fb):
            store = fb.store(1, "p")
            load = fb.load("a", "q")
            return store, load

        block, (store, load) = build_block(emit)
        g = build_ddg(block, m4)
        assert edge_between(g, store, load, DepKind.MEM)

    def test_store_orders_later_store(self, m4):
        def emit(fb):
            s1 = fb.store(1, "p")
            s2 = fb.store(2, "q")
            return s1, s2

        block, (s1, s2) = build_block(emit)
        g = build_ddg(block, m4)
        assert edge_between(g, s1, s2, DepKind.MEM)

    def test_load_orders_later_store(self, m4):
        def emit(fb):
            load = fb.load("a", "p")
            store = fb.store(1, "q")
            return load, store

        block, (load, store) = build_block(emit)
        g = build_ddg(block, m4)
        assert edge_between(g, load, store, DepKind.MEM)

    def test_loads_reorder_freely(self, m4):
        def emit(fb):
            l1 = fb.load("a", "p")
            l2 = fb.load("b", "q")
            return l1, l2

        block, (l1, l2) = build_block(emit)
        g = build_ddg(block, m4)
        assert not edge_between(g, l1, l2, DepKind.MEM)

    def test_loads_after_store_do_not_order_each_other(self, m4):
        def emit(fb):
            s = fb.store(1, "p")
            l1 = fb.load("a", "q")
            l2 = fb.load("b", "r")
            return s, l1, l2

        block, (s, l1, l2) = build_block(emit)
        g = build_ddg(block, m4)
        assert edge_between(g, s, l1, DepKind.MEM)
        assert edge_between(g, s, l2, DepKind.MEM)
        assert not edge_between(g, l1, l2, DepKind.MEM)


class TestControlDependences:
    def test_all_ops_precede_terminator(self, m4):
        def emit(fb):
            a = fb.mov("a", 1)
            b = fb.mov("b", 2)
            return a, b

        block, (a, b) = build_block(emit)
        g = build_ddg(block, m4)
        term = block.terminator
        assert edge_between(g, a, term, DepKind.CONTROL)
        assert edge_between(g, b, term, DepKind.CONTROL)

    def test_branch_condition_is_flow(self, m4):
        fb = FunctionBuilder("f")
        fb.block("entry")
        cond = fb.cmplt("c", "x", 5)
        fb.brcond("c", "entry", "exit")
        fb.block("exit")
        fb.halt()
        f = fb.build()
        block = f.block("entry")
        g = build_ddg(block, m4)
        term = block.terminator
        assert edge_between(g, cond, term, DepKind.FLOW)
