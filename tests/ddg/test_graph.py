"""Unit tests for the dependence-graph data structure."""

import pytest

from repro.ddg.graph import DepKind, DependenceGraph
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation, Reg


def mov(dst, src):
    return Operation(opcode=Opcode.MOV, dest=Reg(dst), srcs=(Reg(src),))


@pytest.fixture
def three_ops():
    return [mov("b", "a"), mov("c", "b"), mov("d", "c")]


class TestDependenceGraph:
    def test_edges_and_queries(self, three_ops):
        a, b, c = three_ops
        g = DependenceGraph(three_ops)
        g.add_edge(a, b, DepKind.FLOW, 1)
        g.add_edge(b, c, DepKind.FLOW, 1)
        assert [e.dst for e in g.successors(a.op_id)] == [b.op_id]
        assert [e.src for e in g.predecessors(c.op_id)] == [b.op_id]
        assert g.flow_predecessors(b.op_id) == [a.op_id]
        assert g.flow_successors(b.op_id) == [c.op_id]
        assert len(list(g.edges())) == 2

    def test_self_edge_rejected(self, three_ops):
        g = DependenceGraph(three_ops)
        with pytest.raises(ValueError):
            g.add_edge(three_ops[0], three_ops[0], DepKind.FLOW, 1)

    def test_foreign_op_rejected(self, three_ops):
        g = DependenceGraph(three_ops)
        with pytest.raises(KeyError):
            g.add_edge(three_ops[0], mov("z", "y"), DepKind.FLOW, 1)

    def test_duplicate_edge_keeps_strongest(self, three_ops):
        a, b, _ = three_ops
        g = DependenceGraph(three_ops)
        g.add_edge(a, b, DepKind.FLOW, 1)
        g.add_edge(a, b, DepKind.FLOW, 3)
        g.add_edge(a, b, DepKind.FLOW, 2)  # weaker: ignored
        edges = [e for e in g.successors(a.op_id) if e.kind is DepKind.FLOW]
        assert len(edges) == 1
        assert edges[0].weight == 3
        # predecessors stay consistent with successors
        assert len(g.predecessors(b.op_id)) == 1

    def test_different_kinds_coexist(self, three_ops):
        a, b, _ = three_ops
        g = DependenceGraph(three_ops)
        g.add_edge(a, b, DepKind.FLOW, 1)
        g.add_edge(a, b, DepKind.ANTI, 0)
        assert len(g.successors(a.op_id)) == 2

    def test_roots(self, three_ops):
        a, b, c = three_ops
        g = DependenceGraph(three_ops)
        g.add_edge(a, b, DepKind.FLOW, 1)
        assert {op.op_id for op in g.roots()} == {a.op_id, c.op_id}

    def test_flow_reachable_from(self, three_ops):
        a, b, c = three_ops
        g = DependenceGraph(three_ops)
        g.add_edge(a, b, DepKind.FLOW, 1)
        g.add_edge(b, c, DepKind.FLOW, 1)
        assert g.flow_reachable_from([a.op_id]) == {b.op_id, c.op_id}
        assert g.flow_reachable_from([c.op_id]) == set()

    def test_flow_reachable_ignores_non_flow(self, three_ops):
        a, b, _ = three_ops
        g = DependenceGraph(three_ops)
        g.add_edge(a, b, DepKind.ANTI, 0)
        assert g.flow_reachable_from([a.op_id]) == set()

    def test_to_networkx(self, three_ops):
        a, b, _ = three_ops
        g = DependenceGraph(three_ops)
        g.add_edge(a, b, DepKind.FLOW, 1)
        nx_graph = g.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph[a.op_id][b.op_id]["kind"] == "flow"
        assert nx_graph[a.op_id][b.op_id]["weight"] == 1

    def test_contains_and_len(self, three_ops):
        g = DependenceGraph(three_ops)
        assert len(g) == 3
        assert three_ops[0].op_id in g
        assert 10**9 not in g

    def test_topological_order_is_program_order(self, three_ops):
        g = DependenceGraph(three_ops)
        assert g.topological_order() == three_ops
