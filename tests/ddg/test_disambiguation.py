"""Tests for optional static memory disambiguation in the DDG builder."""

import pytest

from repro.ddg.builder import build_ddg
from repro.ddg.graph import DepKind
from repro.ir.builder import FunctionBuilder
from repro.sched.list_scheduler import ListScheduler


def block_of(emit):
    fb = FunctionBuilder("f")
    fb.block("entry")
    emit(fb)
    fb.halt()
    return fb.build().block("entry")


def mem_edge(graph, src, dst):
    return [
        e for e in graph.successors(src.op_id)
        if e.dst == dst.op_id and e.kind is DepKind.MEM
    ]


class TestDisambiguation:
    def test_same_base_different_offsets_independent(self, m4):
        blk = block_of(
            lambda fb: (fb.store(1, "p", offset=0), fb.load("a", "p", offset=4))
        )
        store, load = blk.operations[0], blk.operations[1]
        conservative = build_ddg(blk, m4)
        precise = build_ddg(blk, m4, disambiguate=True)
        assert mem_edge(conservative, store, load)
        assert not mem_edge(precise, store, load)

    def test_same_base_same_offset_still_ordered(self, m4):
        blk = block_of(lambda fb: (fb.store(1, "p", offset=4), fb.load("a", "p", offset=4)))
        store, load = blk.operations[0], blk.operations[1]
        precise = build_ddg(blk, m4, disambiguate=True)
        assert mem_edge(precise, store, load)

    def test_different_bases_assumed_aliasing(self, m4):
        blk = block_of(lambda fb: (fb.store(1, "p", offset=0), fb.load("a", "q", offset=4)))
        store, load = blk.operations[0], blk.operations[1]
        precise = build_ddg(blk, m4, disambiguate=True)
        assert mem_edge(precise, store, load)

    def test_redefined_base_breaks_the_proof(self, m4):
        def emit(fb):
            fb.store(1, "p", offset=0)
            fb.add("p", "p", 4)        # p changes: offsets no longer comparable
            fb.load("a", "p", offset=0)

        blk = block_of(emit)
        store, load = blk.operations[0], blk.operations[2]
        precise = build_ddg(blk, m4, disambiguate=True)
        assert mem_edge(precise, store, load)

    def test_loads_never_order_even_when_aliasing(self, m4):
        blk = block_of(lambda fb: (fb.load("a", "p"), fb.load("b", "p")))
        l1, l2 = blk.operations[0], blk.operations[1]
        precise = build_ddg(blk, m4, disambiguate=True)
        assert not mem_edge(precise, l1, l2)

    def test_store_store_same_slot_ordered(self, m4):
        blk = block_of(lambda fb: (fb.store(1, "p", offset=2), fb.store(2, "p", offset=2)))
        s1, s2 = blk.operations[0], blk.operations[1]
        precise = build_ddg(blk, m4, disambiguate=True)
        assert mem_edge(precise, s1, s2)

    def test_disambiguation_never_adds_edges(self, m4, straight_block):
        conservative = set(
            (e.src, e.dst) for e in build_ddg(straight_block, m4).edges()
            if e.kind is DepKind.MEM
        )
        precise = set(
            (e.src, e.dst)
            for e in build_ddg(straight_block, m4, disambiguate=True).edges()
            if e.kind is DepKind.MEM
        )
        assert precise <= conservative

    def test_disambiguation_shortens_schedules(self, m4):
        def emit(fb):
            # a store that conservatively blocks the next load chain
            fb.store(1, "p", offset=100)
            fb.load("a", "p", offset=0)
            fb.add("b", "a", 1)
            fb.mul("c", "b", "b")
            fb.store("c", "p", offset=50)

        blk = block_of(emit)
        scheduler = ListScheduler(m4)
        conservative = scheduler.schedule_graph("c", build_ddg(blk, m4)).length
        precise = scheduler.schedule_graph(
            "p", build_ddg(blk, m4, disambiguate=True)
        ).length
        assert precise < conservative
