"""Unit tests for critical-path analysis."""

import pytest

from repro.ddg.builder import build_ddg
from repro.ddg.critical_path import analyze, critical_path_loads
from repro.ir.builder import FunctionBuilder


def loop_block(emit):
    fb = FunctionBuilder("f")
    fb.block("entry")
    emit(fb)
    fb.halt()
    return fb.build().block("entry")


class TestAnalyze:
    def test_chain_length(self, m4):
        # load(3) -> add(1) -> mul(3): length 7 (+ halt at weight 0).
        block = loop_block(lambda fb: (
            fb.load("a", "p"),
            fb.add("b", "a", 1),
            fb.mul("c", "b", "b"),
        ))
        g = build_ddg(block, m4)
        analysis = analyze(g, m4)
        assert analysis.length == 7

    def test_earliest_start_respects_latency(self, m4):
        block = loop_block(lambda fb: (
            fb.load("a", "p"),
            fb.add("b", "a", 1),
        ))
        g = build_ddg(block, m4)
        analysis = analyze(g, m4)
        load, add = block.operations[0], block.operations[1]
        assert analysis.earliest_start[load.op_id] == 0
        assert analysis.earliest_start[add.op_id] == 3

    def test_height_of_leaf_is_latency(self, m4):
        block = loop_block(lambda fb: fb.load("a", "p"))
        g = build_ddg(block, m4)
        analysis = analyze(g, m4)
        load = block.operations[0]
        # The load's height includes only itself (the halt hangs off a
        # zero-weight control edge).
        assert analysis.height[load.op_id] >= 3

    def test_slack_zero_on_critical_path(self, m4):
        block = loop_block(lambda fb: (
            fb.load("a", "p"),     # critical
            fb.add("b", "a", 1),   # critical
            fb.mov("c", 5),        # plenty of slack
        ))
        g = build_ddg(block, m4)
        analysis = analyze(g, m4)
        load, add, mov = block.operations[:3]
        assert analysis.is_critical(load.op_id)
        assert analysis.is_critical(add.op_id)
        assert analysis.slack(mov.op_id) > 0

    def test_parallel_chains_critical_is_longest(self, m4):
        block = loop_block(lambda fb: (
            fb.load("a", "p"),      # chain 1: 3 + 1
            fb.add("b", "a", 1),
            fb.mov("x", 1),         # chain 2: 1 + 1
            fb.add("y", "x", 1),
        ))
        g = build_ddg(block, m4)
        analysis = analyze(g, m4)
        load = block.operations[0]
        mov = block.operations[2]
        assert analysis.is_critical(load.op_id)
        assert not analysis.is_critical(mov.op_id)

    def test_empty_graph(self, m4):
        from repro.ddg.graph import DependenceGraph

        analysis = analyze(DependenceGraph([]), m4)
        assert analysis.length == 0
        assert analysis.critical_ops == []


class TestCriticalPathLoads:
    def test_load_on_critical_path_found(self, m4):
        block = loop_block(lambda fb: (
            fb.load("a", "p"),
            fb.add("b", "a", 1),
            fb.mul("c", "b", 3),
        ))
        g = build_ddg(block, m4)
        loads = critical_path_loads(g, m4)
        assert [l.op_id for l in loads] == [block.operations[0].op_id]

    def test_off_path_load_excluded(self, m4):
        block = loop_block(lambda fb: (
            fb.load("a", "p"),     # heads a long chain
            fb.add("b", "a", 1),
            fb.mul("c", "b", "b"),
            fb.mul("d", "c", "c"),
            fb.load("x", "q"),     # isolated short chain
        ))
        g = build_ddg(block, m4)
        loads = critical_path_loads(g, m4)
        assert [l.op_id for l in loads] == [block.operations[0].op_id]

    def test_deepest_load_first(self, m4):
        # Two loads on one serial chain: the first has greater height.
        fb = FunctionBuilder("f")
        fb.block("entry")
        first = fb.load("a", "p")
        second = fb.load("b", "a")
        fb.add("c", "b", 1)
        fb.halt()
        block = fb.build().block("entry")
        g = build_ddg(block, m4)
        loads = critical_path_loads(g, m4)
        assert [l.op_id for l in loads] == [first.op_id, second.op_id]
