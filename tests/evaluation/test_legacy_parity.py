"""The spec layer must not move any paper number.

PR 8 rebuilt machine configuration as declarative specs and rerouted the
evaluation through role-resolved machines.  These tests pin the refactor
down: the paper tables render byte-identically whether machines come
from the legacy module constants, from explicit specs, or from spec
files on disk.
"""

from __future__ import annotations

import pytest

from repro.evaluation import table2, table4
from repro.evaluation.experiment import Evaluation, EvaluationSettings
from repro.machine.configs import (
    PLAYDOH_4W,
    PLAYDOH_4W_SPEC,
    PLAYDOH_8W,
    PLAYDOH_8W_SPEC,
)

SCALE = 0.05
BENCHMARKS = ["compress", "li"]


def settings() -> EvaluationSettings:
    return EvaluationSettings(scale=SCALE).with_benchmarks(BENCHMARKS)


@pytest.fixture(scope="module")
def default_tables():
    evaluation = Evaluation(settings())
    return (
        table2.render(table2.compute(evaluation)),
        table4.render(table4.compute(evaluation)),
    )


class TestLegacyParity:
    def test_default_roles_resolve_to_the_legacy_constants(self):
        evaluation = Evaluation(settings())
        assert evaluation.machine_for("base") is PLAYDOH_4W
        assert evaluation.machine_for("wide") is PLAYDOH_8W
        assert evaluation.machine_4w is PLAYDOH_4W
        assert evaluation.machine_8w is PLAYDOH_8W

    def test_explicit_specs_render_identical_tables(self, default_tables):
        bound = Evaluation(
            settings()
            .with_machine("base", PLAYDOH_4W_SPEC)
            .with_machine("wide", PLAYDOH_8W_SPEC)
        )
        assert table2.render(table2.compute(bound)) == default_tables[0]
        assert table4.render(table4.compute(bound)) == default_tables[1]

    def test_spec_files_render_identical_tables(self, tmp_path, default_tables):
        base = tmp_path / "base.json"
        wide = tmp_path / "wide.json"
        base.write_text(PLAYDOH_4W_SPEC.to_json(), encoding="utf-8")
        wide.write_text(PLAYDOH_8W_SPEC.to_json(), encoding="utf-8")
        bound = Evaluation(
            settings()
            .with_machine("base", str(base))
            .with_machine("wide", str(wide))
        )
        assert table2.render(table2.compute(bound)) == default_tables[0]
        assert table4.render(table4.compute(bound)) == default_tables[1]

    def test_job_keys_identical_across_machine_sources(self, tmp_path):
        """Registry name, inline spec and spec file address the SAME
        cache entries — the fingerprint is the only machine identity."""
        path = tmp_path / "base.json"
        path.write_text(PLAYDOH_4W_SPEC.to_json(), encoding="utf-8")
        keysets = []
        for ref in ("playdoh-4w", PLAYDOH_4W_SPEC, str(path)):
            evaluation = Evaluation(settings().with_machine("base", ref))
            keysets.append(
                {job.key() for job in evaluation.required_jobs(["table2"])}
            )
        assert keysets[0] == keysets[1] == keysets[2]

    def test_unknown_role_is_a_clean_error(self):
        with pytest.raises(KeyError, match="no machine bound"):
            Evaluation(settings()).machine_for("gpu")
