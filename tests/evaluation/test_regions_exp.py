"""Tests for the region-size experiment module."""

import pytest

from repro.evaluation.experiment import Evaluation, EvaluationSettings
from repro.evaluation.regions_exp import RegionRow, compute, render


@pytest.fixture(scope="module")
def rows():
    # Restrict to two benchmarks (one serial-chain, one parallel) so the
    # test stays fast; full scale so trip counts divide the factors.
    settings = EvaluationSettings(scale=1.0, benchmarks=("li", "swim"))
    return compute(Evaluation(settings))


class TestRegionsExperiment:
    def test_rows_cover_requested_benchmarks(self, rows):
        assert [r.benchmark for r in rows] == ["li", "swim"]

    def test_baseline_fraction_is_1x(self, rows):
        for row in rows:
            assert row.baseline_fraction == row.fractions[1]
            assert 0 < row.baseline_fraction < 1

    def test_serial_chain_flagged(self, rows):
        by_name = {r.benchmark: r for r in rows}
        assert by_name["li"].serial_chain
        assert not by_name["swim"].serial_chain

    def test_unrolled_variants_validated(self, rows):
        # At scale 1.0 both benchmarks' hottest loops divide by 2.
        for row in rows:
            assert row.fractions.get(2) is not None

    def test_serial_chain_improves_with_region_size(self, rows):
        li = next(r for r in rows if r.benchmark == "li")
        assert li.fractions[2] < li.fractions[1]

    def test_render(self, rows):
        text = render(rows)
        assert "Region-size study" in text
        assert "serial" in text and "parallel" in text
        assert "li" in text

    def test_render_handles_missing_factors(self):
        row = RegionRow(
            benchmark="x",
            loop_label="l",
            serial_chain=False,
            fractions={1: 0.8, 2: None, 4: None},
        )
        text = render([row])
        assert "-" in text
