"""Tests for the evaluation CLI's JSON output mode."""

import json

import pytest

from repro.evaluation.__main__ import main


class TestJsonOutput:
    def test_single_experiment_json(self, capsys):
        assert main(["table3", "--scale", "0.2", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert isinstance(rows, list)
        assert len(rows) == 8
        assert {"benchmark", "best_case_fraction", "worst_case_fraction"} <= set(
            rows[0]
        )

    def test_table2_json_fields(self, capsys):
        assert main(["table2", "--scale", "0.2", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        for row in rows:
            assert 0.0 <= row["best_case_fraction"] <= 1.0
            assert 0.0 <= row["worst_case_fraction"] <= 1.0

    def test_example_has_no_json_form(self, capsys):
        assert main(["example", "--json"]) == 2

    def test_text_mode_unchanged(self, capsys):
        assert main(["table3", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)
        assert "Table 3" in out


class TestRunnerFlags:
    def test_benchmarks_filter(self, capsys, tmp_path):
        assert (
            main(
                ["table2", "--scale", "0.2", "--json",
                 "--benchmarks", "swim,li", "--cache-dir", str(tmp_path)]
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert [row["benchmark"] for row in rows] == ["swim", "li"]

    def test_unknown_benchmark_is_an_error(self, capsys, tmp_path):
        assert (
            main(["table2", "--benchmarks", "nosuch",
                  "--cache-dir", str(tmp_path)])
            == 2
        )
        assert "unknown benchmark" in capsys.readouterr().err

    def test_jobs_and_events_flags(self, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        assert (
            main(
                ["table3", "--scale", "0.2", "--json", "--jobs", "2",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--events", str(events), "--benchmarks", "compress"]
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        lines = [json.loads(l) for l in events.read_text().splitlines()]
        assert any(e["event"] == "job_finish" for e in lines)

    def test_no_cache_leaves_cache_dir_empty(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert (
            main(
                ["table3", "--scale", "0.2", "--json", "--no-cache",
                 "--cache-dir", str(cache), "--benchmarks", "compress"]
            )
            == 0
        )
        assert not list(cache.glob("**/*.pkl"))

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert (
            main(["table3", "--scale", "0.2", "--json",
                  "--cache-dir", str(cache), "--benchmarks", "compress"])
            == 0
        )
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        from repro.trace import replay_enabled

        # build + profile + compile, plus the trace stage unless
        # REPRO_NO_TRACE removed it from the graph.
        expected = 4 if replay_enabled() else 3
        assert stats["entries"] == expected
        if replay_enabled():
            assert stats["by_stage"].get("trace") == 1
            assert stats["bytes_by_stage"].get("trace", 0) > 0
        assert main(["cache", "clear", "--cache-dir", str(cache)]) == 0
        assert f"removed {expected}" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(cache), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_unknown_cache_command(self, capsys, tmp_path):
        assert main(["cache", "bogus", "--cache-dir", str(tmp_path)]) == 2
        assert "unknown cache command" in capsys.readouterr().err


class TestCpiFlag:
    def test_cpi_appends_table_in_text_mode(self, capsys, tmp_path):
        assert (
            main(
                ["table2", "--scale", "0.2", "--cpi",
                 "--benchmarks", "compress", "--cache-dir", str(tmp_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "CPI stacks (--cpi)" in out
        assert "compress@playdoh-4w" in out

    def test_cpi_json_appends_cpi_document(self, capsys, tmp_path):
        assert (
            main(
                ["table2", "--scale", "0.2", "--json", "--cpi",
                 "--benchmarks", "compress", "--cache-dir", str(tmp_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        decoder = json.JSONDecoder()
        rows, end = decoder.raw_decode(out)
        cpi, _ = decoder.raw_decode(out[end:].lstrip())
        assert [row["benchmark"] for row in rows] == ["compress"]
        stacks = cpi["cpi"]
        assert any(key.startswith("compress@") for key in stacks)
        for models in stacks.values():
            assert {"nopred", "proposed", "baseline"} <= set(models)
            for counts in models.values():
                assert sum(counts.values()) > 0

    def test_without_cpi_output_is_unchanged_and_stable(self, capsys, tmp_path):
        """The disabled path: table output must be byte-identical run to
        run and must not mention CPI stacks."""
        outputs = []
        for n in range(2):
            assert (
                main(
                    ["table2", "--scale", "0.2", "--benchmarks", "compress",
                     "--cache-dir", str(tmp_path / str(n))]
                )
                == 0
            )
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "CPI" not in outputs[0]
