"""Tests for the evaluation CLI's JSON output mode."""

import json

import pytest

from repro.evaluation.__main__ import main


class TestJsonOutput:
    def test_single_experiment_json(self, capsys):
        assert main(["table3", "--scale", "0.2", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert isinstance(rows, list)
        assert len(rows) == 8
        assert {"benchmark", "best_case_fraction", "worst_case_fraction"} <= set(
            rows[0]
        )

    def test_table2_json_fields(self, capsys):
        assert main(["table2", "--scale", "0.2", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        for row in rows:
            assert 0.0 <= row["best_case_fraction"] <= 1.0
            assert 0.0 <= row["worst_case_fraction"] <= 1.0

    def test_example_has_no_json_form(self, capsys):
        assert main(["example", "--json"]) == 2

    def test_text_mode_unchanged(self, capsys):
        assert main(["table3", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)
        assert "Table 3" in out
