"""Integration tests for the evaluation experiments.

A session-scoped, scaled-down :class:`Evaluation` keeps these fast while
still running the full pipeline (profile -> compile -> simulate) for
every benchmark at both machine widths.
"""

import pytest

from repro.evaluation import baseline_cmp, figure8, table2, table3, table4
from repro.evaluation.experiment import (
    Evaluation,
    EvaluationSettings,
    arithmetic_mean,
    geometric_mean,
)
from repro.evaluation.report import experiment_names, full_report, run_experiment


@pytest.fixture(scope="module")
def evaluation():
    # 0.4 is the smallest scale at which every benchmark's value profile
    # has warmed up enough for the paper's 0.65 threshold to select loads
    # in all eight programs.
    return Evaluation(EvaluationSettings(scale=0.4))


class TestEvaluationCache:
    def test_profiles_cached(self, evaluation):
        a = evaluation.profile("compress")
        b = evaluation.profile("compress")
        assert a is b

    def test_compilations_cached_per_machine(self, evaluation):
        a = evaluation.compilation("compress", evaluation.machine_4w)
        b = evaluation.compilation("compress", evaluation.machine_4w)
        c = evaluation.compilation("compress", evaluation.machine_8w)
        assert a is b
        assert a is not c

    def test_threshold_setting(self):
        settings = EvaluationSettings().with_threshold(0.8)
        assert settings.spec_config.threshold == 0.8

    def test_means(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert geometric_mean([1.0, 4.0]) == 2.0
        assert arithmetic_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([0.0, 1.0])
        # An empty input must raise, not report 0.0 as if it were data.
        with pytest.raises(ValueError):
            geometric_mean([])


class TestTable2(object):
    def test_rows_cover_suite(self, evaluation):
        rows = table2.compute(evaluation)
        assert [r.benchmark for r in rows] == evaluation.benchmarks

    def test_fractions_are_fractions(self, evaluation):
        for row in table2.compute(evaluation):
            assert 0.0 <= row.best_case_fraction <= 1.0
            assert 0.0 <= row.worst_case_fraction <= 1.0

    def test_paper_shape_best_dominates_worst(self, evaluation):
        """All-correct time dwarfs all-incorrect time (paper's Table 2)."""
        rows = table2.compute(evaluation)
        best = arithmetic_mean([r.best_case_fraction for r in rows])
        worst = arithmetic_mean([r.worst_case_fraction for r in rows])
        assert best > 0.3
        assert worst < 0.25
        assert best > 2 * worst

    def test_render(self, evaluation):
        text = table2.render(table2.compute(evaluation))
        assert "Table 2" in text and "compress" in text and "average" in text


class TestTable3:
    def test_paper_shape_best_case_improves(self, evaluation):
        """Roughly 20% average best-case reduction (paper's headline)."""
        rows = table3.compute(evaluation)
        mean_best = arithmetic_mean([r.best_case_fraction for r in rows])
        assert 0.6 < mean_best < 0.95
        for row in rows:
            assert row.best_case_fraction < 1.0

    def test_worst_case_bounded(self, evaluation):
        """Parallel compensation keeps even all-wrong blocks near the
        original length (far from the serial-recovery blowup)."""
        for row in table3.compute(evaluation):
            assert row.worst_case_fraction <= 1.5
            assert row.best_case_fraction <= row.worst_case_fraction

    def test_render(self, evaluation):
        text = table3.render(table3.compute(evaluation))
        assert "Table 3" in text and "tomcatv" in text


class TestTable4:
    def test_wider_machine_speculates_no_less(self, evaluation):
        rows = table4.compute(evaluation)
        total_4w = sum(r.predictions_4w for r in rows)
        total_8w = sum(r.predictions_8w for r in rows)
        assert total_8w >= total_4w

    def test_wider_machine_improves_no_less_on_average(self, evaluation):
        rows = table4.compute(evaluation)
        mean_4w = arithmetic_mean([r.length_fraction_4w for r in rows])
        mean_8w = arithmetic_mean([r.length_fraction_8w for r in rows])
        assert mean_8w <= mean_4w + 0.02

    def test_render(self, evaluation):
        text = table4.render(table4.compute(evaluation))
        assert "Table 4" in text and "8w" in text


class TestFigure8:
    def test_percentages_sum_to_100(self, evaluation):
        for row in figure8.compute(evaluation):
            assert sum(row.percentages.values()) == pytest.approx(100.0)

    def test_most_blocks_improve_by_small_amounts(self, evaluation):
        """Paper: 'a large percentage of the blocks improve the schedule
        length by 1-4 cycles'."""
        rows = figure8.compute(evaluation)
        improved_small = arithmetic_mean(
            [r.percentages["improved 1-4"] + r.percentages["improved 5-8"] for r in rows]
        )
        assert improved_small > 30.0

    def test_no_degradation_in_all_correct_case(self, evaluation):
        for row in figure8.compute(evaluation):
            assert row.percentages["degraded"] == 0.0

    def test_bucket_of(self):
        assert figure8.bucket_of(-3) == "degraded"
        assert figure8.bucket_of(0) == "unchanged"
        assert figure8.bucket_of(2) == "improved 1-4"
        assert figure8.bucket_of(7) == "improved 5-8"
        assert figure8.bucket_of(40) == "improved >8"

    def test_render(self, evaluation):
        text = figure8.render(figure8.compute(evaluation))
        assert "Figure 8" in text and "suite" in text


class TestBaselineComparison:
    def test_proposed_beats_baseline_everywhere(self, evaluation):
        for row in baseline_cmp.compute(evaluation):
            assert row.cycles_proposed <= row.cycles_baseline

    def test_baseline_overhead_exceeds_proposed(self, evaluation):
        """The paper's claim: recovery overhead is significant for the
        static scheme, negligible for the proposed architecture."""
        rows = baseline_cmp.compute(evaluation)
        mean_baseline = arithmetic_mean([r.baseline_overhead_fraction for r in rows])
        mean_proposed = arithmetic_mean([r.proposed_overhead_fraction for r in rows])
        assert mean_baseline > mean_proposed

    def test_speedups_positive(self, evaluation):
        for row in baseline_cmp.compute(evaluation):
            assert row.proposed_speedup >= 1.0

    def test_render(self, evaluation):
        text = baseline_cmp.render(baseline_cmp.compute(evaluation))
        assert "Recovery comparison" in text


class TestReport:
    def test_experiment_registry(self):
        assert set(experiment_names()) == {
            "table2", "table3", "table4", "figure8", "baseline", "example",
            "regions",
        }

    def test_unknown_experiment(self, evaluation):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("table9", evaluation)

    def test_run_single(self, evaluation):
        assert "Table 2" in run_experiment("table2", evaluation)

    def test_full_report_contains_everything(self, evaluation):
        text = full_report(evaluation)
        for marker in ("Table 2", "Table 3", "Table 4", "Figure 8", "worked example"):
            assert marker in text


class TestCLI:
    def test_main_single_experiment(self, capsys):
        from repro.evaluation.__main__ import main

        code = main(["table3", "--scale", "0.15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out

    def test_main_rejects_unknown(self, capsys):
        from repro.evaluation.__main__ import main

        assert main(["tableX", "--scale", "0.15"]) == 2
