"""Unit tests for basic blocks and functions (CFG structure)."""

import pytest

from repro.ir.block import BasicBlock
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function, find_block_of_operation
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation, Reg


def mk(opcode, dest=None, srcs=(), **kw):
    return Operation(opcode=opcode, dest=dest, srcs=srcs, **kw)


class TestBasicBlock:
    def test_branch_must_be_last(self):
        ops = [mk(Opcode.BR, targets=("x",)), mk(Opcode.MOV, Reg("a"), (Reg("b"),))]
        with pytest.raises(ValueError, match="not the last"):
            BasicBlock("bad", ops)

    def test_append_after_terminator_rejected(self):
        blk = BasicBlock("b")
        blk.append(mk(Opcode.HALT))
        with pytest.raises(ValueError, match="terminated"):
            blk.append(mk(Opcode.MOV, Reg("a"), (Reg("b"),)))

    def test_terminator_and_body(self):
        blk = BasicBlock("b")
        mov = blk.append(mk(Opcode.MOV, Reg("a"), (Reg("b"),)))
        br = blk.append(mk(Opcode.BR, targets=("x",)))
        assert blk.terminator is br
        assert blk.body == [mov]

    def test_no_terminator(self):
        blk = BasicBlock("b", [mk(Opcode.MOV, Reg("a"), (Reg("b"),))])
        assert blk.terminator is None
        assert len(blk.body) == 1

    def test_successor_labels(self):
        blk = BasicBlock("b", [mk(Opcode.BRCOND, None, (Reg("c"),), targets=("t", "f"))])
        assert blk.successor_labels() == ("t", "f")

    def test_halt_has_no_successors(self):
        blk = BasicBlock("b", [mk(Opcode.HALT)])
        assert blk.successor_labels() == ()

    def test_regs_used_and_defined(self):
        blk = BasicBlock("b")
        blk.append(mk(Opcode.ADD, Reg("c"), (Reg("a"), Reg("b"))))
        blk.append(mk(Opcode.MOV, Reg("d"), (Reg("c"),)))
        assert blk.regs_used() == {Reg("a"), Reg("b"), Reg("c")}
        assert blk.regs_defined() == {Reg("c"), Reg("d")}

    def test_upward_exposed_uses(self):
        blk = BasicBlock("b")
        blk.append(mk(Opcode.ADD, Reg("c"), (Reg("a"), Reg("b"))))
        blk.append(mk(Opcode.MOV, Reg("d"), (Reg("c"),)))
        # c is defined before its use, so only a and b are exposed.
        assert blk.upward_exposed_uses() == {Reg("a"), Reg("b")}

    def test_loads(self):
        blk = BasicBlock("b")
        load = blk.append(mk(Opcode.LOAD, Reg("d"), (Reg("p"),)))
        blk.append(mk(Opcode.MOV, Reg("e"), (Reg("d"),)))
        assert blk.loads() == [load]

    def test_len_iter_str(self):
        blk = BasicBlock("b", [mk(Opcode.HALT)])
        assert len(blk) == 1
        assert list(blk)[0].opcode is Opcode.HALT
        assert "b:" in str(blk)


class TestFunction:
    def build_diamond(self) -> Function:
        fb = FunctionBuilder("diamond")
        fb.block("entry")
        fb.cmplt("c", "a", 5)
        fb.brcond("c", "then", "else")
        fb.block("then")
        fb.mov("x", 1)
        fb.br("join")
        fb.block("else")
        fb.mov("x", 2)
        fb.br("join")
        fb.block("join")
        fb.halt()
        return fb.build()

    def test_blocks_in_insertion_order(self):
        f = self.build_diamond()
        assert [b.label for b in f.blocks] == ["entry", "then", "else", "join"]

    def test_duplicate_label_rejected(self):
        f = Function("f")
        f.add_block(BasicBlock("a", [mk(Opcode.HALT)]))
        with pytest.raises(ValueError, match="duplicate"):
            f.add_block(BasicBlock("a", [mk(Opcode.HALT)]))

    def test_successors_predecessors(self):
        f = self.build_diamond()
        assert {b.label for b in f.successors("entry")} == {"then", "else"}
        assert {b.label for b in f.predecessors("join")} == {"then", "else"}
        assert f.predecessors("entry") == []

    def test_missing_block_raises(self):
        f = self.build_diamond()
        with pytest.raises(KeyError, match="no block"):
            f.block("nope")

    def test_reachable_labels(self):
        f = Function("f")
        f.add_block(BasicBlock("entry", [mk(Opcode.BR, targets=("mid",))]))
        f.add_block(BasicBlock("mid", [mk(Opcode.HALT)]))
        f.add_block(BasicBlock("island", [mk(Opcode.HALT)]))
        assert f.reachable_labels() == {"entry", "mid"}

    def test_find_block_of_operation(self):
        f = self.build_diamond()
        op = f.block("then").operations[0]
        found = find_block_of_operation(f, op.op_id)
        assert found is f.block("then")
        assert find_block_of_operation(f, 10**9) is None

    def test_entry_property(self):
        f = self.build_diamond()
        assert f.entry.label == "entry"
        assert len(f) == 4
