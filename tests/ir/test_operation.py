"""Unit tests for operands and operation construction/validation."""

import pytest

from repro.ir.opcodes import Opcode
from repro.ir.operation import Imm, Operation, Reg


def op(opcode, dest=None, srcs=(), **kw):
    return Operation(opcode=opcode, dest=dest, srcs=srcs, **kw)


class TestOperands:
    def test_reg_identity(self):
        assert Reg("r1") == Reg("r1")
        assert Reg("r1") != Reg("r2")
        assert str(Reg("r7")) == "r7"

    def test_imm(self):
        assert Imm(5) == Imm(5)
        assert str(Imm(5)) == "#5"
        assert Imm(1.5).value == 1.5

    def test_regs_hashable(self):
        assert len({Reg("a"), Reg("a"), Reg("b")}) == 2


class TestValidation:
    def test_alu_requires_dest(self):
        with pytest.raises(ValueError, match="destination"):
            op(Opcode.ADD, None, (Reg("a"), Reg("b")))

    def test_alu_arity_checked(self):
        with pytest.raises(ValueError, match="sources"):
            op(Opcode.ADD, Reg("d"), (Reg("a"),))
        with pytest.raises(ValueError, match="sources"):
            op(Opcode.MOV, Reg("d"), (Reg("a"), Reg("b")))

    def test_load_shape(self):
        load = op(Opcode.LOAD, Reg("d"), (Reg("base"),), offset=8)
        assert load.offset == 8
        with pytest.raises(ValueError):
            op(Opcode.LOAD, None, (Reg("base"),))
        with pytest.raises(ValueError):
            op(Opcode.LOAD, Reg("d"), (Reg("a"), Reg("b")))

    def test_store_shape(self):
        store = op(Opcode.STORE, None, (Reg("v"), Reg("base")))
        assert store.dest is None
        with pytest.raises(ValueError):
            op(Opcode.STORE, Reg("d"), (Reg("v"), Reg("base")))
        with pytest.raises(ValueError):
            op(Opcode.STORE, None, (Reg("v"),))

    def test_br_shape(self):
        br = op(Opcode.BR, targets=("out",))
        assert br.targets == ("out",)
        with pytest.raises(ValueError):
            op(Opcode.BR)

    def test_brcond_shape(self):
        brc = op(Opcode.BRCOND, None, (Reg("c"),), targets=("a", "b"))
        assert brc.targets == ("a", "b")
        with pytest.raises(ValueError):
            op(Opcode.BRCOND, None, (Reg("c"),), targets=("a",))
        with pytest.raises(ValueError):
            op(Opcode.BRCOND, None, (), targets=("a", "b"))

    def test_halt_takes_nothing(self):
        op(Opcode.HALT)
        with pytest.raises(ValueError):
            op(Opcode.HALT, Reg("d"))

    def test_ldpred_shape(self):
        ldp = op(Opcode.LDPRED, Reg("d"))
        assert ldp.dest == Reg("d")
        with pytest.raises(ValueError):
            op(Opcode.LDPRED, Reg("d"), (Reg("x"),))
        with pytest.raises(ValueError):
            op(Opcode.LDPRED)

    def test_chkpred_shape(self):
        chk = op(Opcode.CHKPRED, Reg("d"), (Reg("base"),), offset=4)
        assert chk.offset == 4
        with pytest.raises(ValueError):
            op(Opcode.CHKPRED, Reg("d"))


class TestDataflowQueries:
    def test_uses_only_registers(self):
        add = op(Opcode.ADD, Reg("d"), (Reg("a"), Imm(5)))
        assert list(add.uses()) == [Reg("a")]

    def test_defs(self):
        add = op(Opcode.ADD, Reg("d"), (Reg("a"), Reg("b")))
        assert list(add.defs()) == [Reg("d")]
        store = op(Opcode.STORE, None, (Reg("v"), Reg("base")))
        assert list(store.defs()) == []

    def test_store_uses_value_and_base(self):
        store = op(Opcode.STORE, None, (Reg("v"), Reg("base")))
        assert list(store.uses()) == [Reg("v"), Reg("base")]


class TestProperties:
    def test_branch_flags(self):
        assert op(Opcode.BR, targets=("x",)).is_branch
        assert op(Opcode.HALT).is_branch
        assert not op(Opcode.ADD, Reg("d"), (Reg("a"), Reg("b"))).is_branch

    def test_memory_flags(self):
        load = op(Opcode.LOAD, Reg("d"), (Reg("b"),))
        store = op(Opcode.STORE, None, (Reg("v"), Reg("b")))
        assert load.is_load and load.is_memory and not load.is_store
        assert store.is_store and store.is_memory and not store.is_load

    def test_side_effects(self):
        assert op(Opcode.STORE, None, (Reg("v"), Reg("b"))).has_side_effect
        assert op(Opcode.BR, targets=("x",)).has_side_effect
        assert not op(Opcode.LOAD, Reg("d"), (Reg("b"),)).has_side_effect
        assert not op(Opcode.ADD, Reg("d"), (Reg("a"), Reg("b"))).has_side_effect

    def test_unique_ids(self):
        a = op(Opcode.HALT)
        b = op(Opcode.HALT)
        assert a.op_id != b.op_id

    def test_hash_by_id(self):
        a = op(Opcode.HALT)
        assert hash(a) == hash(a.op_id)

    def test_str_contains_opcode_and_operands(self):
        add = op(Opcode.ADD, Reg("d"), (Reg("a"), Imm(3)))
        text = str(add)
        assert "add" in text and "d" in text and "#3" in text
