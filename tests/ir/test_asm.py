"""Tests for the assembly writer/parser (including round-trip properties)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.asm import (
    AsmSyntaxError,
    format_function_asm,
    format_operation_asm,
    format_program_asm,
    parse_function,
    parse_operation,
    parse_program,
)
from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.opcodes import Opcode
from repro.ir.operation import Imm, Reg
from repro.profiling.interpreter import run_program


class TestParseOperation:
    def test_alu(self):
        op = parse_operation("add r1, r2, #5")
        assert op.opcode is Opcode.ADD
        assert op.dest == Reg("r1")
        assert op.srcs == (Reg("r2"), Imm(5))

    def test_unary(self):
        op = parse_operation("mov r1, r2")
        assert op.opcode is Opcode.MOV
        assert op.srcs == (Reg("r2"),)

    def test_float_immediate(self):
        op = parse_operation("fmul f1, f2, #0.5")
        assert op.srcs[1] == Imm(0.5)

    def test_negative_immediate(self):
        op = parse_operation("add r1, r1, #-3")
        assert op.srcs[1] == Imm(-3)

    def test_load_with_offset(self):
        op = parse_operation("load r1, [r2+8]")
        assert op.opcode is Opcode.LOAD
        assert op.srcs == (Reg("r2"),)
        assert op.offset == 8

    def test_load_negative_offset(self):
        assert parse_operation("load r1, [r2-4]").offset == -4

    def test_load_no_offset(self):
        assert parse_operation("load r1, [r2]").offset == 0

    def test_store(self):
        op = parse_operation("store r3, [r2+1]")
        assert op.opcode is Opcode.STORE
        assert op.srcs == (Reg("r3"), Reg("r2"))

    def test_store_immediate_value(self):
        op = parse_operation("store #42, [r2]")
        assert op.srcs[0] == Imm(42)

    def test_branches(self):
        br = parse_operation("br out")
        assert br.targets == ("out",)
        brc = parse_operation("brcond r1, a, b")
        assert brc.targets == ("a", "b")
        assert parse_operation("halt").opcode is Opcode.HALT

    def test_comment_stripped(self):
        op = parse_operation("add r1, r2, r3 ; hello")
        assert op.opcode is Opcode.ADD

    def test_case_insensitive_mnemonic(self):
        assert parse_operation("ADD r1, r2, r3").opcode is Opcode.ADD

    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate r1, r2",
            "add r1, r2",              # missing operand
            "add r1, r2, r3, r4",      # extra operand
            "load r1, r2",             # not a memory operand
            "store r1, r2",
            "br a, b",
            "brcond r1, a",
            "halt r1",
            "add r1, [r2]",            # memory operand in ALU op
            "ldpred r1",               # prediction forms not parseable
            "chkpred r1, [r2]",
            "",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(AsmSyntaxError):
            parse_operation(bad)


class TestParseFunction:
    def test_simple(self):
        fn = parse_function(
            """
            function main entry=start
            start:
                mov r1, #1
                halt
            """
        )
        assert fn.name == "main"
        assert fn.entry_label == "start"
        assert len(fn.block("start")) == 2

    def test_default_entry(self):
        fn = parse_function(
            """
            function f
            entry:
                halt
            """
        )
        assert fn.entry_label == "entry"

    def test_verifies(self):
        with pytest.raises(Exception):
            parse_function(
                """
                function f
                entry:
                    br nowhere
                """
            )

    def test_operation_outside_block(self):
        with pytest.raises(AsmSyntaxError, match="outside any block"):
            parse_function(
                """
                function f
                    halt
                """
            )

    def test_missing_function_header(self):
        with pytest.raises(AsmSyntaxError):
            parse_function("entry:\n  halt")


class TestParseProgram:
    SOURCE = """
    program fib
    memory 100: 1 1 2 3 5 8
    reg r_arg = 3

    function main
    entry:
        add r1, r_arg, #100
        load r2, [r1]
        store r2, [r1+500]
        halt
    """

    def test_directives(self):
        program = parse_program(self.SOURCE)
        assert program.name == "fib"
        assert program.initial_memory[102] == 2
        assert program.initial_registers["r_arg"] == 3

    def test_executes(self):
        result = run_program(parse_program(self.SOURCE))
        assert result.registers["r2"] == 3  # memory[103]
        assert result.memory.peek(603) == 3

    def test_missing_program_directive(self):
        with pytest.raises(AsmSyntaxError, match="program"):
            parse_program("function main\nentry:\n  halt")

    def test_duplicate_program_directive(self):
        with pytest.raises(AsmSyntaxError, match="duplicate"):
            parse_program("program a\nprogram b")

    def test_float_memory(self):
        program = parse_program(
            "program p\nmemory 5: 1.5 2.5\nfunction main\nentry:\n  halt"
        )
        assert program.initial_memory[6] == 2.5


class TestRoundTrip:
    def test_program_round_trip(self, loop_program):
        text = format_program_asm(loop_program)
        reparsed = parse_program(text)
        a = run_program(loop_program)
        b = run_program(reparsed)
        assert a.registers == b.registers
        assert a.memory.snapshot() == b.memory.snapshot()
        # And the text itself is a fixed point.
        assert format_program_asm(reparsed) == text

    def test_benchmarks_round_trip(self):
        from repro.workloads.suite import load_benchmark

        for name in ("compress", "li", "swim"):
            program = load_benchmark(name, scale=0.1)
            reparsed = parse_program(format_program_asm(program))
            a = run_program(program)
            b = run_program(reparsed)
            assert a.registers == b.registers, name
            assert a.memory.snapshot() == b.memory.snapshot(), name

    def test_memory_runs_compacted(self, loop_program):
        text = format_program_asm(loop_program)
        # the 50-word array prints as a single directive
        assert text.count("memory ") == 1


_REGS = [f"r{i}" for i in range(4)]


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(
                st.just("add"),
                st.sampled_from(_REGS),
                st.sampled_from(_REGS),
                st.integers(-100, 100),
            ),
            st.tuples(
                st.just("load"),
                st.sampled_from(_REGS),
                st.sampled_from(_REGS),
                st.integers(-8, 8),
            ),
            st.tuples(
                st.just("store"),
                st.sampled_from(_REGS),
                st.sampled_from(_REGS),
                st.integers(-8, 8),
            ),
        ),
        min_size=1,
        max_size=15,
    )
)
def test_property_random_programs_round_trip(ops):
    """format -> parse is the identity on behaviour for random programs."""
    pb = ProgramBuilder("rand")
    fb = pb.function()
    fb.block("entry")
    for kind, a, b, k in ops:
        if kind == "add":
            fb.add(a, b, k)
        elif kind == "load":
            fb.load(a, b, offset=k)
        else:
            fb.store(a, b, offset=k)
    fb.halt()
    pb.add(fb.build())
    program = pb.build()

    reparsed = parse_program(format_program_asm(program))
    a = run_program(program)
    b = run_program(reparsed)
    assert a.registers == b.registers
    assert a.memory.snapshot() == b.memory.snapshot()
