"""Unit tests for liveness analysis and the textual printers."""

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.liveness import compute_liveness
from repro.ir.operation import Reg
from repro.ir.printer import format_block, format_function, format_program, format_table


class TestLiveness:
    def test_straight_line(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("a", 1)
        fb.add("b", "a", 2)
        fb.br("exit")
        fb.block("exit")
        fb.store("b", "a", offset=0)
        fb.halt()
        info = compute_liveness(fb.build())
        assert Reg("a") in info.live_out["entry"]
        assert Reg("b") in info.live_out["entry"]
        assert info.live_out["exit"] == frozenset()
        assert info.live_in["exit"] == frozenset({Reg("a"), Reg("b")})

    def test_loop_carried_value_is_live_out_of_loop_block(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("acc", 0)
        fb.mov("i", 0)
        fb.br("loop")
        fb.block("loop")
        fb.add("acc", "acc", 1)
        fb.add("i", "i", 1)
        fb.cmplt("c", "i", 10)
        fb.brcond("c", "loop", "exit")
        fb.block("exit")
        fb.store("acc", "i", offset=0)
        fb.halt()
        info = compute_liveness(fb.build())
        # acc is redefined in the loop but consumed by the next iteration
        # and by the exit block.
        assert Reg("acc") in info.live_out["loop"]
        assert Reg("i") in info.live_out["loop"]
        # c is only consumed by the loop's own branch.
        assert Reg("c") not in info.live_out["loop"]

    def test_diamond_merges(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.cmplt("c", "arg", 5)
        fb.brcond("c", "then", "else")
        fb.block("then")
        fb.mov("x", 1)
        fb.br("join")
        fb.block("else")
        fb.mov("x", 2)
        fb.br("join")
        fb.block("join")
        fb.store("x", "arg", offset=0)
        fb.halt()
        info = compute_liveness(fb.build())
        assert Reg("x") in info.live_out["then"]
        assert Reg("x") in info.live_out["else"]
        # arg flows all the way from the entry to the join's store.
        assert Reg("arg") in info.live_in["entry"]
        assert Reg("arg") in info.live_out["entry"]

    def test_dead_value_not_live(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("dead", 42)
        fb.halt()
        info = compute_liveness(fb.build())
        assert Reg("dead") not in info.live_out["entry"]


class TestPrinters:
    def build_program(self):
        pb = ProgramBuilder("prog")
        fb = pb.function()
        fb.block("entry")
        fb.mov("a", 1)
        fb.halt()
        pb.add(fb.build())
        pb.memory(10, [1, 2])
        pb.register("a", 0)
        return pb.build()

    def test_format_block(self):
        program = self.build_program()
        text = format_block(program.main.block("entry"))
        assert text.startswith("entry:")
        assert "mov" in text

    def test_format_function(self):
        text = format_function(self.build_program().main)
        assert "function main" in text
        assert "entry:" in text

    def test_format_program(self):
        text = format_program(self.build_program())
        assert "program prog" in text
        assert "memory image: 2 words" in text
        assert "init-regs: a=0" in text

    def test_format_table_alignment(self):
        text = format_table(["col", "x"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        # all rows share the same width
        assert len({len(line) for line in lines}) == 1

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text
