"""Unit tests for opcode semantics and classification."""

import math

import pytest

from repro.ir.opcodes import (
    BRANCH_OPCODES,
    MEMORY_OPCODES,
    FUClass,
    Opcode,
    arity,
    evaluator,
    fu_class,
    is_alu,
)


class TestEvaluatorSemantics:
    @pytest.mark.parametrize(
        "opcode,a,b,expected",
        [
            (Opcode.ADD, 3, 4, 7),
            (Opcode.SUB, 3, 4, -1),
            (Opcode.MUL, 3, 4, 12),
            (Opcode.AND, 0b1100, 0b1010, 0b1000),
            (Opcode.OR, 0b1100, 0b1010, 0b1110),
            (Opcode.XOR, 0b1100, 0b1010, 0b0110),
            (Opcode.SHL, 1, 4, 16),
            (Opcode.SHR, 16, 2, 4),
            (Opcode.MIN, 3, -5, -5),
            (Opcode.MAX, 3, -5, 3),
            (Opcode.FADD, 1.5, 2.25, 3.75),
            (Opcode.FSUB, 1.5, 0.5, 1.0),
            (Opcode.FMUL, 1.5, 2.0, 3.0),
        ],
    )
    def test_binary(self, opcode, a, b, expected):
        assert evaluator(opcode)(a, b) == expected

    @pytest.mark.parametrize(
        "opcode,a,expected",
        [
            (Opcode.MOV, 42, 42),
            (Opcode.NEG, 42, -42),
            (Opcode.NOT, 0, -1),
            (Opcode.ABS, -9, 9),
            (Opcode.FNEG, 1.5, -1.5),
            (Opcode.FABS, -1.5, 1.5),
        ],
    )
    def test_unary(self, opcode, a, expected):
        assert evaluator(opcode)(a) == expected

    def test_fsqrt(self):
        assert evaluator(Opcode.FSQRT)(9.0) == pytest.approx(3.0)

    def test_fsqrt_of_negative_does_not_raise(self):
        # Speculative re-execution with a wrong operand must not crash.
        assert evaluator(Opcode.FSQRT)(-4.0) == pytest.approx(2.0)

    def test_comparisons_produce_zero_or_one(self):
        assert evaluator(Opcode.CMPLT)(1, 2) == 1
        assert evaluator(Opcode.CMPLT)(2, 1) == 0
        assert evaluator(Opcode.CMPGE)(2, 2) == 1
        assert evaluator(Opcode.CMPEQ)(5, 5) == 1
        assert evaluator(Opcode.CMPNE)(5, 5) == 0
        assert evaluator(Opcode.CMPLE)(1, 1) == 1
        assert evaluator(Opcode.CMPGT)(3, 1) == 1


class TestDivisionSemantics:
    def test_div_truncates_toward_zero(self):
        div = evaluator(Opcode.DIV)
        assert div(7, 2) == 3
        assert div(-7, 2) == -3
        assert div(7, -2) == -3
        assert div(-7, -2) == 3

    def test_div_by_zero_yields_zero(self):
        assert evaluator(Opcode.DIV)(5, 0) == 0

    def test_mod_consistent_with_div(self):
        div = evaluator(Opcode.DIV)
        mod = evaluator(Opcode.MOD)
        for a in (-7, -1, 0, 1, 7, 13):
            for b in (-3, -1, 1, 3, 5):
                assert div(a, b) * b + mod(a, b) == a

    def test_mod_by_zero_yields_zero(self):
        assert evaluator(Opcode.MOD)(5, 0) == 0

    def test_fdiv_by_zero_yields_zero(self):
        assert evaluator(Opcode.FDIV)(5.0, 0.0) == 0.0

    def test_fdiv_normal(self):
        assert evaluator(Opcode.FDIV)(7.0, 2.0) == pytest.approx(3.5)


class TestClassification:
    def test_branch_opcodes(self):
        assert Opcode.BR in BRANCH_OPCODES
        assert Opcode.BRCOND in BRANCH_OPCODES
        assert Opcode.HALT in BRANCH_OPCODES
        assert Opcode.ADD not in BRANCH_OPCODES

    def test_memory_opcodes(self):
        assert MEMORY_OPCODES == {Opcode.LOAD, Opcode.STORE}

    def test_arity(self):
        assert arity(Opcode.ADD) == 2
        assert arity(Opcode.MOV) == 1
        assert arity(Opcode.DIV) == 2
        with pytest.raises(ValueError):
            arity(Opcode.LOAD)

    def test_is_alu(self):
        assert is_alu(Opcode.ADD)
        assert is_alu(Opcode.MOV)
        assert is_alu(Opcode.FSQRT)
        assert not is_alu(Opcode.LOAD)
        assert not is_alu(Opcode.BR)
        assert not is_alu(Opcode.LDPRED)

    def test_evaluator_unavailable_for_non_alu(self):
        with pytest.raises(KeyError):
            evaluator(Opcode.LOAD)


class TestFUClassAssignment:
    def test_integer_ops_on_ialu(self):
        assert fu_class(Opcode.ADD) is FUClass.IALU
        assert fu_class(Opcode.CMPLT) is FUClass.IALU

    def test_float_ops_on_falu(self):
        for op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT):
            assert fu_class(op) is FUClass.FALU

    def test_memory_ops_on_mem(self):
        assert fu_class(Opcode.LOAD) is FUClass.MEM
        assert fu_class(Opcode.STORE) is FUClass.MEM

    def test_branches_on_branch_unit(self):
        assert fu_class(Opcode.BR) is FUClass.BRANCH
        assert fu_class(Opcode.BRCOND) is FUClass.BRANCH
        assert fu_class(Opcode.HALT) is FUClass.BRANCH

    def test_check_prediction_runs_on_memory_unit(self):
        # Paper section 3: the check re-executes the load, so it occupies
        # a memory unit rather than needing a new functional unit.
        assert fu_class(Opcode.CHKPRED) is FUClass.MEM

    def test_ldpred_runs_on_integer_unit(self):
        # Paper section 3: LdPred behaves like a move sourced from the
        # value predictor.
        assert fu_class(Opcode.LDPRED) is FUClass.IALU
