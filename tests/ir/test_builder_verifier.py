"""Unit tests for the fluent builders and the IR verifier."""

import pytest

from repro.ir.builder import FunctionBuilder, ProgramBuilder, as_operand, as_reg
from repro.ir.opcodes import Opcode
from repro.ir.operation import Imm, Operation, Reg
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.verifier import VerificationError, check_function, verify_program


class TestOperandCoercion:
    def test_string_to_reg(self):
        assert as_operand("r1") == Reg("r1")

    def test_number_to_imm(self):
        assert as_operand(5) == Imm(5)
        assert as_operand(1.5) == Imm(1.5)

    def test_passthrough(self):
        assert as_operand(Reg("x")) == Reg("x")
        assert as_operand(Imm(2)) == Imm(2)

    def test_bad_operand(self):
        with pytest.raises(TypeError):
            as_operand(object())

    def test_as_reg(self):
        assert as_reg("a") == Reg("a")
        assert as_reg(Reg("a")) == Reg("a")
        with pytest.raises(TypeError):
            as_reg(5)


class TestFunctionBuilder:
    def test_emit_before_block_rejected(self):
        fb = FunctionBuilder("f")
        with pytest.raises(RuntimeError, match="open a block"):
            fb.mov("a", 1)

    def test_all_integer_emitters(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        emitters = [
            fb.add, fb.sub, fb.mul, fb.div, fb.mod, fb.and_, fb.or_,
            fb.xor, fb.shl, fb.shr, fb.min_, fb.max_,
            fb.cmpeq, fb.cmpne, fb.cmplt, fb.cmple, fb.cmpgt, fb.cmpge,
        ]
        for i, emit in enumerate(emitters):
            op = emit(f"d{i}", "a", i)
            assert op.dest == Reg(f"d{i}")
        fb.halt()
        f = fb.build()
        assert len(f.block("entry")) == len(emitters) + 1

    def test_unary_emitters(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        for emit, opc in [
            (fb.mov, Opcode.MOV),
            (fb.neg, Opcode.NEG),
            (fb.not_, Opcode.NOT),
            (fb.abs_, Opcode.ABS),
        ]:
            assert emit("d", "a").opcode is opc
        fb.halt()
        fb.build()

    def test_float_emitters(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        assert fb.fadd("d", "a", "b").opcode is Opcode.FADD
        assert fb.fsub("d", "a", "b").opcode is Opcode.FSUB
        assert fb.fmul("d", "a", 2.0).opcode is Opcode.FMUL
        assert fb.fdiv("d", "a", "b").opcode is Opcode.FDIV
        assert fb.fsqrt("d", "a").opcode is Opcode.FSQRT
        fb.halt()
        fb.build()

    def test_memory_emitters(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        load = fb.load("d", "p", offset=4)
        store = fb.store("d", "p", offset=8)
        assert load.offset == 4 and load.opcode is Opcode.LOAD
        assert store.offset == 8 and store.opcode is Opcode.STORE
        fb.halt()
        fb.build()

    def test_build_verifies(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.br("nowhere")
        with pytest.raises(VerificationError):
            fb.build()


class TestProgramBuilder:
    def test_memory_and_registers(self):
        pb = ProgramBuilder("p")
        fb = pb.function()
        fb.block("entry")
        fb.halt()
        pb.add(fb.build())
        pb.memory(100, [1, 2, 3]).register("r_arg", 9)
        program = pb.build()
        assert program.initial_memory == {100: 1, 101: 2, 102: 3}
        assert program.initial_registers == {"r_arg": 9}

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError, match="no functions"):
            ProgramBuilder("p").build()


class TestVerifier:
    def halted(self, label="entry"):
        return BasicBlock(label, [Operation(opcode=Opcode.HALT)])

    def test_function_without_blocks(self):
        problems = check_function(Function("f"))
        assert any("no blocks" in p for p in problems)

    def test_missing_entry(self):
        f = Function("f", entry_label="start")
        f.add_block(self.halted("other"))
        problems = check_function(f)
        assert any("entry" in p for p in problems)

    def test_missing_terminator(self):
        f = Function("f")
        blk = BasicBlock("entry")
        blk.append(
            Operation(opcode=Opcode.MOV, dest=Reg("a"), srcs=(Reg("b"),))
        )
        f.add_block(blk)
        problems = check_function(f)
        assert any("terminator" in p for p in problems)

    def test_unknown_branch_target(self):
        f = Function("f")
        f.add_block(BasicBlock("entry", [Operation(opcode=Opcode.BR, targets=("gone",))]))
        problems = check_function(f)
        assert any("unknown label" in p for p in problems)

    def test_prediction_forms_rejected_in_frontend_code(self):
        f = Function("f")
        blk = BasicBlock("entry")
        blk.append(Operation(opcode=Opcode.LDPRED, dest=Reg("a")))
        blk.append(Operation(opcode=Opcode.HALT))
        f.add_block(blk)
        problems = check_function(f)
        assert any("speculation pass" in p for p in problems)

    def test_verify_program(self):
        from repro.ir.program import Program

        program = Program("p")
        f = Function("main")
        f.add_block(self.halted())
        program.add_function(f)
        assert verify_program(program) is program

    def test_verify_program_missing_main(self):
        from repro.ir.program import Program

        program = Program("p", main="main")
        f = Function("helper")
        f.add_block(self.halted())
        program.add_function(f)
        with pytest.raises(VerificationError):
            verify_program(program)
