"""End-to-end bench coverage: scenarios, profiler attribution, the CLI.

Scenario runs here use a tiny workload scale and a restricted suite so
the whole module stays interactive; determinism of the underlying
pipeline is what makes the counter assertions exact.
"""

import json

import pytest

from repro.bench.cli import main as bench_main
from repro.bench.harness import BenchConfig, run_bench
from repro.bench.profiler import profile_scenario, render_profile, subsystem_of
from repro.bench.scenarios import (
    SCENARIOS,
    BenchContext,
    resolve_scenarios,
)

#: Small, fast context shared by the scenario tests.
CTX = BenchContext(workload_scale=0.25, benchmarks=("compress", "li"))


class TestRegistry:
    def test_expected_scenarios_registered(self):
        assert {
            "table2",
            "table3",
            "table4",
            "figure8",
            "ablation_threshold",
            "runner_scaling",
        } <= set(SCENARIOS)

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            resolve_scenarios(["nope"])

    def test_resolve_default_is_all(self):
        assert len(resolve_scenarios()) == len(SCENARIOS)


class TestScenarioRuns:
    def test_table2_counters_are_deterministic(self):
        scenario = SCENARIOS["table2"]
        first = scenario.run(CTX, None)
        second = scenario.run(CTX, None)
        assert first.counters == second.counters
        assert first.counters["sim_cycles"] > 0
        assert first.counters["ops_retired"] > 0

    def test_table3_attributes_pass_time(self):
        scenario = SCENARIOS["table3"]
        state = scenario.prepare(CTX)
        run = scenario.run(CTX, state)
        assert run.counters["passes_run"] > 0
        pass_ns = run.extra["pass_ns"]
        assert "speculate" in pass_ns and "schedule-original" in pass_ns
        assert all(total >= 0 for total in pass_ns.values())

    def test_runner_scaling_reports_full_warm_hit_rate(self, tmp_path):
        ctx = BenchContext(
            workload_scale=0.25,
            benchmarks=("compress", "li"),
            workdir=tmp_path,
        )
        run = SCENARIOS["runner_scaling"].run(ctx, None)
        assert run.extra["warm_cache_hit_rate"] == 1.0
        assert run.counters["jobs_served"] == 2 * run.counters["jobs_executed"]


class TestRunBench:
    def test_artifact_covers_requested_scenarios(self):
        config = BenchConfig(
            preset="small",
            workload_scale=0.25,
            repeats=2,
            warmup=0,
            scenario_names=("table2",),
            benchmarks=("compress", "li"),
        )
        artifact = run_bench(config)
        assert set(artifact["scenarios"]) == {"table2"}
        entry = artifact["scenarios"]["table2"]
        assert entry["wall_s"]["n"] >= 1
        assert entry["counters_stable"] is True
        assert entry["rates"]["sim_cycles_per_s"] > 0


class TestProfiler:
    def test_subsystem_mapping(self):
        assert subsystem_of("/x/src/repro/core/vliw_engine.py") == "core"
        assert subsystem_of("/x/src/repro/opt/passes.py") == "compiler"
        assert subsystem_of("/x/src/repro/runner/jobs.py") == "runner"
        assert subsystem_of("/usr/lib/python3.11/json/decoder.py") == "other"

    def test_profile_names_top10_hot_functions_for_table2(self):
        report = profile_scenario("table2", CTX, top=10)
        assert len(report.hot) == 10
        assert all(row.function for row in report.hot)
        # The simulation pipeline must dominate: repro subsystems appear.
        assert {"core", "profiling"} <= set(report.by_subsystem)
        rendered = render_profile(report)
        assert "top 10 hot functions" in rendered
        assert "self time by subsystem" in rendered

    def test_invalid_sort_rejected(self):
        with pytest.raises(ValueError):
            profile_scenario("table2", CTX, sort="nope")


class TestCli:
    def test_list(self, capsys):
        assert bench_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "runner_scaling" in out

    def test_run_writes_artifact(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = bench_main(
            [
                "run",
                "--scale",
                "small",
                "--scenarios",
                "table3",
                "--repeats",
                "2",
                "--warmup",
                "0",
                "--benchmarks",
                "compress,li",
            ]
        )
        assert code == 0
        artifacts = list(tmp_path.glob("BENCH_*.json"))
        assert len(artifacts) == 1
        payload = json.loads(artifacts[0].read_text())
        assert payload["schema"] == "repro.bench/v1"
        assert set(payload["scenarios"]) == {"table3"}

    def test_run_unknown_scenario_exits_2(self, capsys):
        assert bench_main(["run", "--scenarios", "nope"]) == 2

    def test_compare_exit_codes(self, tmp_path, capsys):
        from repro.bench.harness import make_artifact, write_artifact
        from repro.bench.scenarios import ScenarioRun
        from repro.bench.harness import scenario_entry
        from repro.bench.stats import robust_stats

        config = BenchConfig(preset="t", workload_scale=0.1, repeats=1, warmup=0)

        def artifact_with_wall(wall):
            entry = scenario_entry(
                robust_stats([wall]), [ScenarioRun(counters={})]
            )
            return make_artifact(config, {"s": entry})

        old_dir = tmp_path / "old"
        new_dir = tmp_path / "new"
        old = write_artifact(artifact_with_wall(1.0), old_dir)
        fast = write_artifact(artifact_with_wall(1.05), new_dir)
        assert bench_main(["compare", str(old), str(fast)]) == 0

        slow_dir = tmp_path / "slow"
        slow = write_artifact(artifact_with_wall(10.0), slow_dir)
        assert bench_main(["compare", str(old), str(slow)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_missing_file_exits_2(self, capsys):
        assert bench_main(["compare", "/nonexistent/a.json", "/nonexistent/b.json"]) == 2

    def test_profile_cli_json(self, capsys):
        code = bench_main(
            ["profile", "table3", "--top", "5", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "table3"
        assert len(payload["hot"]) == 5
        assert "compiler" in payload["by_subsystem"]
