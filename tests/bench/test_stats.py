"""Robust-statistics primitives: quantiles, Tukey rejection, summaries."""

import pytest

from repro.bench.stats import (
    SampleStats,
    median,
    quantile,
    reject_outliers,
    robust_stats,
)


class TestQuantile:
    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even_interpolates(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_extremes(self):
        samples = [5.0, 1.0, 3.0]
        assert quantile(samples, 0.0) == 1.0
        assert quantile(samples, 1.0) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestRejectOutliers:
    def test_small_samples_untouched(self):
        assert reject_outliers([1.0, 100.0, 1.0]) == [1.0, 100.0, 1.0]

    def test_spike_rejected(self):
        samples = [1.0, 1.1, 0.9, 1.0, 1.05, 50.0]
        kept = reject_outliers(samples)
        assert 50.0 not in kept
        assert len(kept) == 5

    def test_all_equal_kept(self):
        samples = [2.0] * 6
        assert reject_outliers(samples) == samples


class TestRobustStats:
    def test_summary_fields(self):
        stats = robust_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.n == 5
        assert stats.median == 3.0
        assert stats.mean == 3.0
        assert stats.min == 1.0 and stats.max == 5.0
        assert stats.outliers_rejected == 0
        assert stats.samples == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_outlier_excluded_from_summary_but_kept_raw(self):
        stats = robust_stats([1.0, 1.1, 0.9, 1.0, 1.05, 50.0])
        assert stats.outliers_rejected == 1
        assert stats.max < 50.0
        assert 50.0 in stats.samples

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            robust_stats([])

    def test_dict_roundtrip(self):
        stats = robust_stats([1.0, 2.0, 3.0, 4.0])
        back = SampleStats.from_dict(stats.as_dict())
        assert back == stats
