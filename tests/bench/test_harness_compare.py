"""Harness measurement, artifact round-trips, and regression gating."""

import json

import pytest

from repro.bench.compare import compare_artifacts, render_report
from repro.bench.harness import (
    ARTIFACT_PREFIX,
    SCHEMA,
    BenchConfig,
    load_artifact,
    make_artifact,
    measure,
    scenario_entry,
    write_artifact,
)
from repro.bench.scenarios import ScenarioRun
from repro.bench.stats import robust_stats


def _entry(wall_samples, counters=None, extra=None):
    runs = [
        ScenarioRun(counters=dict(counters or {}), extra=dict(extra or {}))
        for _ in wall_samples
    ]
    return scenario_entry(robust_stats(list(wall_samples)), runs)


def _artifact(scenarios, **overrides):
    config = BenchConfig(preset="test", workload_scale=0.1, repeats=3, warmup=0)
    artifact = make_artifact(config, scenarios)
    artifact.update(overrides)
    return artifact


class TestMeasure:
    def test_counts_calls(self):
        calls = []
        result = measure(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert result.stats.n == 3
        assert len(result.results) == 3

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)


class TestScenarioEntry:
    def test_rates_derived_from_counters(self):
        stats = robust_stats([2.0, 2.0, 2.0])
        runs = [ScenarioRun(counters={"sim_cycles": 100.0})] * 3
        entry = scenario_entry(stats, runs)
        assert entry["rates"]["sim_cycles_per_s"] == pytest.approx(50.0)
        assert entry["counters_stable"] is True

    def test_unstable_counters_flagged(self):
        stats = robust_stats([1.0, 1.0])
        runs = [
            ScenarioRun(counters={"c": 1.0}),
            ScenarioRun(counters={"c": 2.0}),
        ]
        assert scenario_entry(stats, runs)["counters_stable"] is False


class TestArtifactIO:
    def test_write_load_roundtrip(self, tmp_path):
        artifact = _artifact({"s": _entry([1.0, 1.1, 0.9])})
        path = write_artifact(artifact, tmp_path)
        assert path.name.startswith(ARTIFACT_PREFIX)
        loaded = load_artifact(path)
        assert loaded["schema"] == SCHEMA
        assert loaded["scenarios"]["s"]["wall_s"]["n"] == 3
        assert loaded["code_version"]
        assert loaded["pipeline_fingerprint"]
        assert loaded["host"]["python"]

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope", "scenarios": {}}))
        with pytest.raises(ValueError, match="not a repro.bench"):
            load_artifact(path)

    def test_load_rejects_missing_scenarios(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": SCHEMA}))
        with pytest.raises(ValueError, match="scenarios"):
            load_artifact(path)


class TestCompare:
    def test_no_regression_within_threshold(self):
        old = _artifact({"s": _entry([1.0], {"sim_cycles": 100.0})})
        new = _artifact({"s": _entry([1.1], {"sim_cycles": 100.0})})
        result = compare_artifacts(old, new, threshold=1.25)
        assert not result.regressed
        assert result.exit_code == 0

    def test_wall_regression_detected(self):
        old = _artifact({"s": _entry([1.0])})
        new = _artifact({"s": _entry([2.0])})
        result = compare_artifacts(old, new, threshold=1.25)
        assert result.regressed
        assert result.exit_code == 1
        (comparison,) = result.scenarios
        assert comparison.wall_regressed
        assert comparison.wall_ratio == pytest.approx(2.0)

    def test_rate_regression_detected(self):
        # Same wall time, but far fewer simulated cycles per second.
        old = _artifact({"s": _entry([1.0], {"sim_cycles": 1000.0})})
        new = _artifact({"s": _entry([1.0], {"sim_cycles": 100.0})})
        result = compare_artifacts(old, new, threshold=1.25)
        (comparison,) = result.scenarios
        assert comparison.rate_regressed
        assert result.exit_code == 1

    def test_improvement_passes(self):
        old = _artifact({"s": _entry([2.0], {"sim_cycles": 100.0})})
        new = _artifact({"s": _entry([1.0], {"sim_cycles": 100.0})})
        assert compare_artifacts(old, new).exit_code == 0

    def test_missing_scenario_fails_gate(self):
        old = _artifact({"s": _entry([1.0]), "t": _entry([1.0])})
        new = _artifact({"s": _entry([1.0])})
        result = compare_artifacts(old, new)
        assert result.regressed
        statuses = {c.name: c.status for c in result.scenarios}
        assert statuses["t"] == "missing"

    def test_new_scenario_is_informational(self):
        old = _artifact({"s": _entry([1.0])})
        new = _artifact({"s": _entry([1.0]), "t": _entry([1.0])})
        result = compare_artifacts(old, new)
        assert not result.regressed
        statuses = {c.name: c.status for c in result.scenarios}
        assert statuses["t"] == "new"

    def test_threshold_below_one_rejected(self):
        with pytest.raises(ValueError):
            compare_artifacts(_artifact({}), _artifact({}), threshold=0.5)

    def test_fingerprint_drift_noted(self):
        old = _artifact({}, code_version="1")
        new = _artifact({}, code_version="2")
        result = compare_artifacts(old, new)
        assert any("code_version" in note for note in result.notes)

    def test_report_renders(self):
        old = _artifact({"s": _entry([1.0], {"sim_cycles": 100.0})})
        new = _artifact({"s": _entry([2.0], {"sim_cycles": 40.0})})
        report = render_report(compare_artifacts(old, new))
        assert "REGRESSED" in report
        assert "wall" in report and "cycles/s" in report
