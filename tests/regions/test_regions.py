"""Tests for region enlargement: block merging and loop unrolling."""

import pytest

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.verifier import verify_function
from repro.profiling.interpreter import run_program
from repro.regions.merge import merge_straightline
from repro.regions.unroll import UnrollError, unroll_loop, unroll_program_loop


def counted_loop_program(trips=40, store_addr=5000):
    pb = ProgramBuilder("t")
    fb = pb.function()
    fb.block("entry")
    fb.mov("i", 0)
    fb.mov("acc", 0)
    fb.br("loop")
    fb.block("loop")
    fb.add("addr", "i", 1000)
    fb.load("v", "addr")
    fb.add("acc", "acc", "v")
    fb.add("i", "i", 1)
    fb.cmplt("c", "i", trips)
    fb.brcond("c", "loop", "exit")
    fb.block("exit")
    fb.store("acc", "i", offset=store_addr)
    fb.halt()
    pb.add(fb.build())
    pb.memory(1000, [3 * k + 1 for k in range(trips)])
    return pb.build()


class TestMergeStraightline:
    def test_merges_unique_chain(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("a", 1)
        fb.br("mid")
        fb.block("mid")
        fb.add("b", "a", 2)
        fb.br("tail")
        fb.block("tail")
        fb.store("b", "a", offset=9)
        fb.halt()
        merged = merge_straightline(fb.build())
        assert [b.label for b in merged] == ["entry"]
        assert len(merged.block("entry")) == 4  # mov, add, store, halt
        verify_function(merged)

    def test_merged_function_equivalent(self):
        program = counted_loop_program()
        merged_fn = merge_straightline(program.main)
        from repro.ir.program import Program

        clone = Program("merged")
        clone.add_function(merged_fn)
        clone.initial_memory.update(program.initial_memory)
        base = run_program(program)
        new = run_program(clone)
        assert new.registers == base.registers
        assert new.memory.snapshot() == base.memory.snapshot()

    def test_does_not_merge_across_join(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.cmplt("c", "x", 1)
        fb.brcond("c", "a", "b")
        fb.block("a")
        fb.br("join")
        fb.block("b")
        fb.br("join")
        fb.block("join")  # two predecessors: must survive
        fb.halt()
        merged = merge_straightline(fb.build())
        assert merged.has_block("join")

    def test_does_not_merge_self_loop(self):
        program = counted_loop_program()
        merged = merge_straightline(program.main)
        assert merged.has_block("loop")

    def test_loop_exit_chain_merges(self):
        # loop -> exit is not mergeable (loop has 2 successors), but the
        # entry -> loop edge is not mergeable either (loop has 2 preds).
        program = counted_loop_program()
        merged = merge_straightline(program.main)
        assert {b.label for b in merged} == {"entry", "loop", "exit"}


class TestUnrollLoop:
    @pytest.mark.parametrize("factor", [2, 4, 8])
    def test_equivalence_when_divisible(self, factor):
        program = counted_loop_program(trips=40)
        unrolled = unroll_program_loop(program, "loop", factor)
        base = run_program(program)
        new = run_program(unrolled)
        original_regs = {
            k: v for k, v in new.registers.items() if "__u" not in k
        }
        assert original_regs == base.registers
        assert new.memory.snapshot() == base.memory.snapshot()

    def test_fewer_dynamic_operations(self):
        program = counted_loop_program(trips=40)
        unrolled = unroll_program_loop(program, "loop", 4)
        assert (
            run_program(unrolled).dynamic_operations
            < run_program(program).dynamic_operations
        )

    def test_indivisible_trip_count_diverges(self):
        # 41 trips, factor 2: the elided mid-block exit test makes the
        # unrolled program run one extra half-iteration — the
        # architectural-equivalence check used by the experiments must
        # catch exactly this.
        program = counted_loop_program(trips=41)
        unrolled = unroll_program_loop(program, "loop", 2)
        base = run_program(program)
        new = run_program(unrolled)
        assert new.registers["i"] != base.registers["i"]

    def test_unrolled_block_is_larger(self):
        program = counted_loop_program()
        unrolled = unroll_program_loop(program, "loop", 2)
        original = program.main.block("loop")
        bigger = unrolled.main.block("loop")
        # 2x the body minus one elided compare, plus the branch.
        assert len(bigger) == 2 * len(original.body) - 1 + 1

    def test_renaming_exposes_parallelism(self, m4):
        from repro.sched.list_scheduler import schedule_block

        program = counted_loop_program()
        unrolled = unroll_program_loop(program, "loop", 2)
        single = schedule_block(program.main.block("loop"), m4).length
        double = schedule_block(unrolled.main.block("loop"), m4).length
        # Two renamed iterations overlap: much cheaper than 2x serial.
        assert double < 2 * single

    def test_verifies(self):
        program = counted_loop_program()
        unrolled = unroll_program_loop(program, "loop", 2)
        verify_function(unrolled.main)

    def test_factor_validation(self):
        program = counted_loop_program()
        with pytest.raises(UnrollError, match="factor"):
            unroll_loop(program.main, "loop", 1)

    def test_non_loop_rejected(self):
        program = counted_loop_program()
        with pytest.raises(UnrollError, match="self-loop"):
            unroll_loop(program.main, "exit", 2)

    def test_condition_with_other_uses_rejected(self):
        pb = ProgramBuilder("t")
        fb = pb.function()
        fb.block("entry")
        fb.mov("i", 0)
        fb.br("loop")
        fb.block("loop")
        fb.add("i", "i", 1)
        fb.cmplt("c", "i", 10)
        fb.add("x", "c", 1)  # condition escapes into the dataflow
        fb.brcond("c", "loop", "exit")
        fb.block("exit")
        fb.halt()
        pb.add(fb.build())
        with pytest.raises(UnrollError, match="feed only the branch"):
            unroll_loop(pb.build().main, "loop", 2)
