"""Integration: optimisation passes feeding the speculation pipeline."""

import pytest

from repro.core.metrics import compile_program
from repro.core.program_sim import simulate_program
from repro.ir.builder import ProgramBuilder
from repro.machine.configs import PLAYDOH_4W
from repro.opt import optimize_program
from repro.profiling.profile_run import profile_program


def build_sloppy_program():
    """A loop with foldable constants, redundant copies and dead code —
    the kind of front-end output the classical passes exist to clean."""
    pb = ProgramBuilder("sloppy")
    fb = pb.function()
    fb.block("entry")
    fb.mov("i", 0)
    fb.mov("base_lo", 1000)
    fb.mov("base_hi", 24)        # constant chain fodder
    fb.br("loop")
    fb.block("loop")
    fb.mov("dead1", 99)                  # dead
    fb.mul("scaled", "base_hi", 2)       # constant: folds to 48
    fb.add("addr", "i", "base_lo")
    fb.mov("addr_copy", "addr")          # copy to propagate
    fb.load("v", "addr_copy")
    fb.add("t1", "v", "scaled")
    fb.mul("t2", "t1", 3)
    fb.add("t3", "t2", 1)
    fb.mov("dead2", "t3")                # dead (never read)
    fb.store("t3", "addr", offset=5000)
    fb.add("i", "i", 1)
    fb.cmplt("c", "i", 80)
    fb.brcond("c", "loop", "exit")
    fb.block("exit")
    fb.halt()
    pb.add(fb.build())
    pb.memory(1000, [4 * k for k in range(80)])
    return pb.build()


class TestOptimizedPipeline:
    def test_passes_shrink_the_block(self):
        program = build_sloppy_program()
        optimized = optimize_program(program)
        assert len(optimized.main.block("loop")) < len(program.main.block("loop"))

    def test_optimized_program_still_speculates(self):
        optimized = optimize_program(build_sloppy_program())
        profile = profile_program(optimized)
        compilation = compile_program(optimized, PLAYDOH_4W, profile)
        assert "loop" in compilation.speculated_labels

    def test_optimization_before_speculation_is_a_pure_win(self):
        """Cleaning the block first gives the scheduler less clutter:
        the optimised+speculated machine is at least as fast."""
        program = build_sloppy_program()
        optimized = optimize_program(program)

        results = {}
        for label, prog in (("raw", program), ("optimized", optimized)):
            profile = profile_program(prog)
            compilation = compile_program(prog, PLAYDOH_4W, profile)
            results[label] = simulate_program(compilation)
        assert (
            results["optimized"].cycles_proposed
            <= results["raw"].cycles_proposed
        )
        # and both machines computed the same memory image
        # (simulate_program runs the real interpreter underneath).
        assert results["optimized"].cycles_nopred <= results["raw"].cycles_nopred
