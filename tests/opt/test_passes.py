"""Tests for the optimisation passes, including semantic-equivalence
property tests driven by the interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.opcodes import Opcode
from repro.ir.operation import Imm, Reg
from repro.opt import (
    constant_folding,
    copy_propagation,
    dead_code_elimination,
    optimize_function,
    optimize_program,
)
from repro.profiling.interpreter import run_program


def function_of(emit):
    fb = FunctionBuilder("f")
    fb.block("entry")
    emit(fb)
    fb.halt()
    return fb.build()


class TestConstantFolding:
    def test_folds_constant_chain(self):
        fn = function_of(lambda fb: (
            fb.mov("a", 6),
            fb.mov("b", 7),
            fb.mul("c", "a", "b"),
            fb.add("d", "c", 1),
        ))
        folded = constant_folding(fn)
        ops = folded.block("entry").operations
        assert all(op.opcode in (Opcode.MOV, Opcode.HALT) for op in ops)
        c = next(op for op in ops if op.dest == Reg("c"))
        d = next(op for op in ops if op.dest == Reg("d"))
        assert c.srcs == (Imm(42),)
        assert d.srcs == (Imm(43),)

    def test_unknown_operand_blocks_fold(self):
        fn = function_of(lambda fb: fb.add("c", "unknown", 1))
        folded = constant_folding(fn)
        assert folded.block("entry").operations[0].opcode is Opcode.ADD

    def test_load_invalidates_constant(self):
        fn = function_of(lambda fb: (
            fb.mov("a", 5),
            fb.load("a", "p"),
            fb.add("b", "a", 1),
        ))
        folded = constant_folding(fn)
        add = folded.block("entry").operations[2]
        assert add.opcode is Opcode.ADD  # a is no longer constant

    def test_folds_constant_branch(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("c", 1)
        fb.brcond("c", "yes", "no")
        fb.block("yes")
        fb.halt()
        fb.block("no")
        fb.halt()
        folded = constant_folding(fb.build())
        term = folded.block("entry").terminator
        assert term.opcode is Opcode.BR
        assert term.targets == ("yes",)

    def test_folds_false_branch(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("c", 0)
        fb.brcond("c", "yes", "no")
        fb.block("yes")
        fb.halt()
        fb.block("no")
        fb.halt()
        folded = constant_folding(fb.build())
        assert folded.block("entry").terminator.targets == ("no",)


class TestCopyPropagation:
    def test_forwards_copy(self):
        fn = function_of(lambda fb: (
            fb.mov("b", "a"),
            fb.add("c", "b", 1),
        ))
        out = copy_propagation(fn)
        add = out.block("entry").operations[1]
        assert add.srcs[0] == Reg("a")

    def test_redefinition_of_source_kills_copy(self):
        fn = function_of(lambda fb: (
            fb.mov("b", "a"),
            fb.mov("a", 99),
            fb.add("c", "b", 1),
        ))
        out = copy_propagation(fn)
        add = out.block("entry").operations[2]
        assert add.srcs[0] == Reg("b")  # must NOT read the new a

    def test_redefinition_of_dest_kills_copy(self):
        fn = function_of(lambda fb: (
            fb.mov("b", "a"),
            fb.mov("b", 5),
            fb.add("c", "b", 1),
        ))
        out = copy_propagation(fn)
        add = out.block("entry").operations[2]
        assert add.srcs[0] == Reg("b")

    def test_chained_copies(self):
        fn = function_of(lambda fb: (
            fb.mov("b", "a"),
            fb.mov("c", "b"),
            fb.add("d", "c", 1),
        ))
        out = copy_propagation(fn)
        add = out.block("entry").operations[2]
        assert add.srcs[0] == Reg("a")


class TestDeadCodeElimination:
    def test_removes_dead_alu(self):
        fn = function_of(lambda fb: (
            fb.mov("dead", 42),
            fb.mov("live", 1),
            fb.store("live", "live", offset=0),
        ))
        out = dead_code_elimination(fn)
        dests = [op.dest for op in out.block("entry").operations if op.dest]
        assert Reg("dead") not in dests

    def test_keeps_liveout_values(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.mov("x", 42)
        fb.br("next")
        fb.block("next")
        fb.store("x", "x", offset=0)
        fb.halt()
        out = dead_code_elimination(fb.build())
        assert any(op.dest == Reg("x") for op in out.block("entry").operations)

    def test_keeps_stores_and_branches(self):
        fn = function_of(lambda fb: fb.store(1, "p", offset=0))
        out = dead_code_elimination(fn)
        assert any(op.is_store for op in out.block("entry").operations)
        assert out.block("entry").terminator is not None

    def test_removes_dead_load(self):
        fn = function_of(lambda fb: (
            fb.load("unused", "p"),
            fb.store(1, "p", offset=5),
        ))
        out = dead_code_elimination(fn)
        assert not out.block("entry").loads()

    def test_dead_chain_removed_transitively(self):
        fn = function_of(lambda fb: (
            fb.mov("a", 1),
            fb.add("b", "a", 1),   # only feeds the dead c
            fb.add("c", "b", 1),   # dead
            fb.store(9, "p", offset=0),
        ))
        out = optimize_function(fn)
        body_dests = [op.dest for op in out.block("entry").operations if op.dest]
        assert body_dests == []


class TestPipelineEquivalence:
    def test_loop_program_unchanged_behaviour(self, loop_program):
        optimized = optimize_program(loop_program)
        a = run_program(loop_program)
        b = run_program(optimized)
        assert b.memory.snapshot() == a.memory.snapshot()
        assert b.dynamic_operations <= a.dynamic_operations

    def test_benchmarks_unchanged_behaviour(self):
        from repro.workloads.suite import load_benchmark

        for name in ("compress", "m88ksim"):
            program = load_benchmark(name, scale=0.15)
            optimized = optimize_program(program)
            a = run_program(program)
            b = run_program(optimized)
            assert b.memory.snapshot() == a.memory.snapshot(), name


_REGS = [f"r{i}" for i in range(4)]
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("mov_imm"), st.sampled_from(_REGS), st.integers(-50, 50), st.just(0)),
        st.tuples(st.just("mov"), st.sampled_from(_REGS), st.sampled_from(_REGS), st.just(0)),
        st.tuples(st.just("add"), st.sampled_from(_REGS), st.sampled_from(_REGS), st.sampled_from(_REGS)),
        st.tuples(st.just("mul_imm"), st.sampled_from(_REGS), st.sampled_from(_REGS), st.integers(-5, 5)),
        st.tuples(st.just("store"), st.sampled_from(_REGS), st.sampled_from(_REGS), st.integers(0, 4)),
        st.tuples(st.just("load"), st.sampled_from(_REGS), st.sampled_from(_REGS), st.integers(0, 4)),
    ),
    min_size=1,
    max_size=20,
)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_property_optimisation_preserves_memory_state(ops):
    """The optimised program writes exactly the same memory image."""
    pb = ProgramBuilder("rand")
    fb = pb.function()
    fb.block("entry")
    for kind, a, b, c in ops:
        if kind == "mov_imm":
            fb.mov(a, b)
        elif kind == "mov":
            fb.mov(a, b)
        elif kind == "add":
            fb.add(a, b, c)
        elif kind == "mul_imm":
            fb.mul(a, b, c)
        elif kind == "store":
            fb.store(a, b, offset=c)
        else:
            fb.load(a, b, offset=c)
    fb.halt()
    pb.add(fb.build())
    program = pb.build()

    optimized = optimize_program(program)
    original = run_program(program)
    transformed = run_program(optimized)
    assert transformed.memory.snapshot() == original.memory.snapshot()
    assert transformed.dynamic_operations <= original.dynamic_operations
