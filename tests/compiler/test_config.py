"""Tests for pipeline configuration: specs, canonical forms, fingerprints."""

import pytest

from repro.compiler import (
    PassSpec,
    PipelineConfig,
    STANDARD_CODEGEN,
    canonical_value,
    compilation_fingerprint,
    standard_pipeline,
)
from repro.core.speculation import SpeculationConfig
from repro.ir.operation import reset_operation_ids
from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W
from repro.workloads.suite import load_benchmark


class TestPassSpec:
    def test_make_sorts_options(self):
        a = PassSpec.make("unroll", label="loop", factor=2)
        b = PassSpec.make("unroll", factor=2, label="loop")
        assert a == b
        assert a.options == (("factor", 2), ("label", "loop"))

    def test_option_lookup(self):
        spec = PassSpec.make("unroll", label="loop", factor=4)
        assert spec.option("factor") == 4
        assert spec.option("missing", "dflt") == "dflt"

    def test_render(self):
        assert PassSpec("dce").render() == "dce"
        assert "label='loop'" in PassSpec.make("unroll", label="loop").render()


class TestPipelineConfig:
    def test_standard_pipeline_has_no_program_passes(self):
        config = standard_pipeline()
        assert config.program_passes == ()
        assert config.codegen_passes == STANDARD_CODEGEN
        assert config.is_standard()

    def test_unroll_and_optimize_front_ends(self):
        config = standard_pipeline(optimize=True, unroll=("loop", 2))
        names = [p.name for p in config.program_passes]
        assert names == ["optimize", "unroll"]
        assert not config.is_standard()

    def test_verify_excluded_from_canonical(self):
        on = standard_pipeline(verify=True)
        off = standard_pipeline(verify=False)
        assert on != off
        assert on.canonical() == off.canonical()
        assert on.fingerprint() == off.fingerprint()

    def test_fingerprint_distinguishes_options(self):
        two = standard_pipeline(unroll=("loop", 2))
        four = standard_pipeline(unroll=("loop", 4))
        assert two.fingerprint() != four.fingerprint()
        assert two.fingerprint() == standard_pipeline(unroll=("loop", 2)).fingerprint()

    def test_frontend_keeps_only_program_passes(self):
        config = standard_pipeline(unroll=("loop", 2))
        frontend = config.frontend()
        assert frontend.program_passes == config.program_passes
        assert frontend.codegen_passes == ()

    def test_passes_property_concatenates(self):
        config = standard_pipeline(optimize=True)
        assert [p.name for p in config.passes][0] == "optimize"
        assert [p.name for p in config.passes][-1] == "baseline"

    def test_describe_shows_speculation_knobs(self):
        text = standard_pipeline().describe(
            spec_config=SpeculationConfig(threshold=0.8)
        )
        assert "speculate" in text
        assert "threshold=0.8" in text
        assert "schedule-original" in text

    def test_config_is_hashable_and_picklable(self):
        import pickle

        config = standard_pipeline(unroll=("loop", 2))
        assert hash(config)
        assert pickle.loads(pickle.dumps(config)) == config


class TestCanonicalValue:
    def test_primitives_and_floats(self):
        assert canonical_value(1.5) == "1.5"
        assert canonical_value({"b": 1, "a": 2}) == {"a": 2, "b": 1}
        assert canonical_value(frozenset({3, 1, 2})) == [1, 2, 3]

    def test_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            canonical_value(object())


class TestCompilationFingerprint:
    def test_insensitive_to_operation_id_state(self):
        reset_operation_ids()
        first = load_benchmark("swim", scale=0.25)
        # Same source program, ids minted from a different counter state.
        second = load_benchmark("swim", scale=0.25)
        assert compilation_fingerprint(
            first, PLAYDOH_4W
        ) == compilation_fingerprint(second, PLAYDOH_4W)

    def test_sensitive_to_every_input(self):
        reset_operation_ids()
        program = load_benchmark("swim", scale=0.25)
        base = compilation_fingerprint(program, PLAYDOH_4W)
        assert base != compilation_fingerprint(program, PLAYDOH_8W)
        assert base != compilation_fingerprint(
            program, PLAYDOH_4W, spec_config=SpeculationConfig(threshold=0.8)
        )
        assert base != compilation_fingerprint(
            program, PLAYDOH_4W, pipeline=standard_pipeline(optimize=True)
        )
