"""Tests for the pass manager: pass algebra, verification, metrics, and
byte-identity with the historical fused compilation loop."""

import pickle

import pytest

from repro.compiler import (
    PassManager,
    PassSpec,
    PipelineConfig,
    PipelineError,
    available_passes,
    compile_program,
    register_pass,
    standard_pipeline,
)
from repro.compiler.passes import _REGISTRY
from repro.ir.block import BasicBlock
from repro.ir.builder import ProgramBuilder
from repro.ir.function import Function
from repro.ir.liveness import compute_liveness
from repro.ir.operation import reset_operation_ids
from repro.ir.verifier import VerificationError
from repro.machine.configs import PLAYDOH_4W
from repro.obs.metrics import MetricsRegistry
from repro.opt.passes import function_shape
from repro.profiling.profile_run import profile_program
from repro.sched.list_scheduler import ListScheduler
from repro.core.baseline import build_baseline_block
from repro.core.metrics import BlockCompilation, ProgramCompilation
from repro.core.specsched import schedule_speculative
from repro.core.speculation import SpeculationConfig, speculate_block
from repro.workloads.suite import load_benchmark


def sloppy_program():
    """A program the classical passes can visibly improve."""
    pb = ProgramBuilder("sloppy")
    fb = pb.function("main")
    fb.block("entry")
    fb.mov("a", 6)
    fb.mov("b", 7)
    fb.mul("c", "a", "b")      # folds to 42
    fb.mov("d", "c")           # copy to propagate
    fb.add("e", "d", 1)        # then folds to 43
    fb.mov("dead", 99)         # never read again
    fb.mov("p", 0)
    fb.store("e", "p")
    fb.halt()
    return pb.add(fb.build()).build()


def legacy_compile(program, machine, profile, config=None):
    """The pre-pass-manager ``compile_program`` body, verbatim."""
    config = config or SpeculationConfig()
    function = program.main
    liveness = compute_liveness(function)
    scheduler = ListScheduler(machine)
    blocks = {}
    for block in function:
        original_length = scheduler.schedule_block(block).length
        compilation = BlockCompilation(
            label=block.label, original_length=original_length
        )
        spec = speculate_block(
            block, machine, profile.values,
            live_out=liveness.live_out[block.label], config=config,
        )
        if spec is not None:
            compilation.spec_schedule = schedule_speculative(
                spec, machine, original_length=original_length
            )
            compilation.baseline = build_baseline_block(
                spec, machine, original_length=original_length
            )
        blocks[block.label] = compilation
    return ProgramCompilation(
        program=program, machine=machine, config=config,
        profile=profile, blocks=blocks,
    )


@pytest.fixture
def temporary_pass():
    """Register throwaway passes; unregister them afterwards."""
    added = []

    def add(name, kind, fn, **defaults):
        register_pass(name, kind, f"test pass {name}", fn, **defaults)
        added.append(name)

    yield add
    for name in added:
        _REGISTRY.pop(name, None)


class TestLegacyEquivalence:
    @pytest.mark.parametrize("workload", ["li", "swim"])
    def test_standard_pipeline_matches_fused_loop_bytewise(self, workload):
        reset_operation_ids()
        p1 = load_benchmark(workload, scale=0.25)
        r1 = profile_program(p1)
        legacy = legacy_compile(p1, PLAYDOH_4W, r1)
        reset_operation_ids()
        p2 = load_benchmark(workload, scale=0.25)
        r2 = profile_program(p2)
        managed = PassManager().compile(p2, PLAYDOH_4W, r2)
        assert pickle.dumps(legacy) == pickle.dumps(managed)

    def test_module_level_compile_program_delegates(self):
        from repro.core.metrics import compile_program as core_compile

        reset_operation_ids()
        p1 = load_benchmark("swim", scale=0.25)
        via_compiler = compile_program(p1, PLAYDOH_4W, profile_program(p1))
        reset_operation_ids()
        p2 = load_benchmark("swim", scale=0.25)
        via_core = core_compile(p2, PLAYDOH_4W, profile_program(p2))
        assert pickle.dumps(via_compiler) == pickle.dumps(via_core)


class TestPassAlgebra:
    def test_dce_is_idempotent(self):
        program = sloppy_program()
        dce_only = PipelineConfig(program_passes=(PassSpec("dce"),))
        first = PassManager(dce_only).run_program_passes(program)
        assert function_shape(first.main) != function_shape(program.main)
        metrics = MetricsRegistry()
        second = PassManager(dce_only, metrics=metrics).run_program_passes(first)
        assert function_shape(second.main) == function_shape(first.main)
        snapshot = metrics.snapshot()
        assert snapshot.counter("compiler.pass_changed", label="dce") == 0
        assert snapshot.counter("compiler.pass_runs", label="dce") == 1

    def test_fold_copyprop_reaches_fixpoint(self):
        config = PipelineConfig(
            program_passes=(PassSpec("fold"), PassSpec("copyprop"))
        )
        current = sloppy_program()
        for _ in range(8):
            metrics = MetricsRegistry()
            current = PassManager(config, metrics=metrics).run_program_passes(
                current
            )
            snapshot = metrics.snapshot()
            changed = (
                snapshot.counter("compiler.pass_changed", label="fold")
                + snapshot.counter("compiler.pass_changed", label="copyprop")
            )
            if changed == 0:
                break
        else:
            pytest.fail("fold/copyprop never reached a fixpoint")
        # The fixpoint rewrote the program, and re-running the pair from
        # the fixpoint is a no-op (confirmed by fresh metrics).
        assert function_shape(current.main) != function_shape(
            sloppy_program().main
        )
        confirm = MetricsRegistry()
        again = PassManager(config, metrics=confirm).run_program_passes(current)
        assert function_shape(again.main) == function_shape(current.main)
        assert confirm.snapshot().counter_family("compiler.pass_changed") == {}

    def test_optimize_pass_matches_optimize_program(self):
        from repro.opt import optimize_program

        program = sloppy_program()
        via_pass = PassManager(
            PipelineConfig(program_passes=(PassSpec("optimize"),))
        ).run_program_passes(program)
        via_driver = optimize_program(sloppy_program())
        assert function_shape(via_pass.main) == function_shape(via_driver.main)

    def test_unroll_pass_matches_unroll_program_loop(self):
        from repro.regions.unroll import UnrollError, unroll_program_loop

        reset_operation_ids()
        program = load_benchmark("li", scale=0.25)
        label = None
        via_direct = None
        for block in program.main:
            if block.terminator and block.label in block.terminator.targets:
                try:
                    via_direct = unroll_program_loop(program, block.label, 2)
                except UnrollError:
                    continue
                label = block.label
                break
        assert label is not None, "li has no unrollable self-loop"
        via_pass = PassManager(
            standard_pipeline(unroll=(label, 2))
        ).run_program_passes(program)
        assert function_shape(via_pass.main) == function_shape(via_direct.main)


class TestVerification:
    def test_rejects_malformed_pass_output(self, temporary_pass):
        def drop_terminator(function):
            blocks = []
            for block in function:
                ops = [op for op in block.operations]
                blocks.append(BasicBlock(block.label, ops[:-1]))
            result = Function(function.name, entry_label=function.entry_label)
            for block in blocks:
                result.add_block(block)
            return result

        temporary_pass("test-break-terminator", "function", drop_terminator)
        config = PipelineConfig(
            program_passes=(PassSpec("test-break-terminator"),)
        )
        with pytest.raises(VerificationError) as excinfo:
            PassManager(config).run_program_passes(sloppy_program())
        assert "test-break-terminator" in str(excinfo.value)
        # With verification off the malformed program passes through.
        broken = PassManager(config, verify=False).run_program_passes(
            sloppy_program()
        )
        assert broken.main.block("entry").terminator is None

    def test_verifies_codegen_input(self):
        program = sloppy_program()
        mangled = Function("main", entry_label="entry")
        mangled.add_block(
            BasicBlock("entry", list(program.main.block("entry").operations)[:-1])
        )
        from repro.ir.program import Program

        bad = Program("bad", main="main")
        bad.add_function(mangled)
        with pytest.raises(VerificationError):
            PassManager().compile(bad, PLAYDOH_4W, None)


class TestPipelineErrors:
    def test_unknown_pass(self):
        config = PipelineConfig(program_passes=(PassSpec("no-such-pass"),))
        with pytest.raises(PipelineError, match="no-such-pass"):
            PassManager(config).run_program_passes(sloppy_program())

    def test_unknown_option(self):
        config = PipelineConfig(
            program_passes=(PassSpec.make("optimize", bogus=1),)
        )
        with pytest.raises(PipelineError, match="bogus"):
            PassManager(config).run_program_passes(sloppy_program())

    def test_missing_required_option(self):
        config = PipelineConfig(program_passes=(PassSpec("unroll"),))
        with pytest.raises(PipelineError, match="label"):
            PassManager(config).run_program_passes(sloppy_program())

    def test_codegen_pass_rejected_in_program_position(self):
        config = PipelineConfig(program_passes=(PassSpec("speculate"),))
        with pytest.raises(PipelineError, match="speculate"):
            PassManager(config).run_program_passes(sloppy_program())

    def test_program_pass_rejected_in_codegen_position(self):
        config = PipelineConfig(codegen_passes=(PassSpec("dce"),))
        with pytest.raises(PipelineError, match="dce"):
            PassManager(config).compile(sloppy_program(), PLAYDOH_4W, None)

    def test_speculate_requires_liveness(self):
        config = PipelineConfig(codegen_passes=(PassSpec("speculate"),))
        reset_operation_ids()
        program = load_benchmark("swim", scale=0.25)
        profile = profile_program(program)
        with pytest.raises(PipelineError, match="liveness"):
            PassManager(config).compile(program, PLAYDOH_4W, profile)

    def test_run_rejects_stale_profile_with_program_passes(self):
        reset_operation_ids()
        program = load_benchmark("swim", scale=0.25)
        profile = profile_program(program)
        manager = PassManager(standard_pipeline(optimize=True))
        with pytest.raises(PipelineError, match="profile"):
            manager.run(program, PLAYDOH_4W, profile)

    def test_run_profiles_rewritten_program(self):
        reset_operation_ids()
        program = load_benchmark("swim", scale=0.25)
        compilation = PassManager(standard_pipeline(optimize=True)).run(
            program, PLAYDOH_4W, None
        )
        assert compilation.blocks


class TestMetrics:
    def test_passes_timed_and_counted(self):
        reset_operation_ids()
        program = load_benchmark("swim", scale=0.25)
        profile = profile_program(program)
        metrics = MetricsRegistry()
        PassManager(metrics=metrics).compile(program, PLAYDOH_4W, profile)
        snapshot = metrics.snapshot()
        for spec in standard_pipeline().codegen_passes:
            hist = snapshot.histogram("compiler.pass_ns", label=spec.name)
            assert hist is not None and hist.count == 1
            assert snapshot.counter("compiler.pass_runs", label=spec.name) == 1
        assert snapshot.counter("compiler.pass_changed", label="liveness") == 1


class TestRegistry:
    def test_builtin_passes_registered(self):
        names = {info.name for info in available_passes()}
        assert {
            "fold", "copyprop", "dce", "optimize", "unroll",
            "liveness", "schedule-original", "speculate",
            "schedule-speculative", "baseline",
        } <= names
