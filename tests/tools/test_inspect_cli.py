"""Tests for the repro-inspect command-line tool."""

import pytest

from repro.tools.inspect_cli import main, _parse_scenario


class TestParseScenario:
    def test_best_worst(self):
        assert _parse_scenario("best", 3) == [True, True, True]
        assert _parse_scenario("worst", 2) == [False, False]

    def test_explicit_pattern(self):
        assert _parse_scenario("1,0", 2) == [True, False]

    def test_bad_patterns(self):
        with pytest.raises(SystemExit):
            _parse_scenario("1,0", 3)
        with pytest.raises(SystemExit):
            _parse_scenario("1,2", 2)


class TestCLI:
    def test_list_blocks(self, capsys):
        assert main(["--benchmark", "vortex", "--list", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "lookup" in out and "commit" in out

    def test_unknown_benchmark(self, capsys):
        assert main(["--benchmark", "gcc"]) == 2

    def test_unknown_block(self, capsys):
        assert main(["--benchmark", "vortex", "--block", "nope", "--scale", "0.2"]) == 2

    def test_full_inspection(self, capsys):
        code = main(
            ["--benchmark", "vortex", "--block", "lookup", "--scale", "0.5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "assembly:" in out
        assert "load profile:" in out
        assert "critical path:" in out
        assert "original schedule" in out
        assert "speculative schedule" in out
        assert "Compensation Code Engine" in out  # timeline rendered

    def test_explicit_scenario(self, capsys):
        code = main(
            [
                "--benchmark", "vortex", "--block", "lookup",
                "--scale", "0.5", "--scenario", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0/1 mispredicted" in out

    def test_unspeculated_block(self, capsys):
        # at an impossible threshold nothing is predicted
        code = main(
            [
                "--benchmark", "vortex", "--block", "lookup",
                "--scale", "0.5", "--threshold", "1.5",
            ]
        )
        assert code == 0
        assert "nothing profitable" in capsys.readouterr().out

    def test_missing_block_defaults_to_list(self, capsys):
        assert main(["--benchmark", "li", "--scale", "0.2"]) == 0
        assert "blocks of li" in capsys.readouterr().out
