"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W, UNLIMITED


@pytest.fixture(autouse=True)
def _reset_shared_state():
    """Isolate tests from the process-wide sweep-sharing caches.

    The batched simulation context, the per-block compile memos, the
    shared build/profile products and the program-digest memo are all
    pure memos, but tests that count cache traffic (trace-store
    captures, runner events) or construct conflicting stand-ins must
    not see another test's entries.
    """
    from repro.batchsim import reset_shared_state

    reset_shared_state()
    yield
    reset_shared_state()


@pytest.fixture
def m4():
    """The paper's primary 4-wide machine."""
    return PLAYDOH_4W


@pytest.fixture
def m8():
    """The 8-wide machine of the Table 4 scaling study."""
    return PLAYDOH_8W


@pytest.fixture
def unlimited():
    """A machine that never binds on resources."""
    return UNLIMITED


@pytest.fixture
def straight_block():
    """A simple straight-line block: load feeding an arithmetic chain."""
    fb = FunctionBuilder("straight")
    fb.block("entry")
    fb.mov("r1", 100)
    fb.load("r2", "r1")
    fb.add("r3", "r2", 1)
    fb.mul("r4", "r3", "r3")
    fb.store("r4", "r1", offset=10)
    fb.halt()
    function = fb.build()
    return function.block("entry")


@pytest.fixture
def loop_program():
    """A small program with a counted loop over a strided array."""
    pb = ProgramBuilder("loop_program")
    fb = pb.function()
    fb.block("entry")
    fb.mov("r_i", 0)
    fb.mov("r_acc", 0)
    fb.br("loop")
    fb.block("loop")
    fb.add("r_addr", "r_i", 1000)
    fb.load("r_v", "r_addr")
    fb.add("r_acc", "r_acc", "r_v")
    fb.add("r_i", "r_i", 1)
    fb.cmplt("r_c", "r_i", 50)
    fb.brcond("r_c", "loop", "exit")
    fb.block("exit")
    fb.store("r_acc", "r_i", offset=2000)
    fb.halt()
    pb.add(fb.build())
    pb.memory(1000, [3 * k for k in range(50)])
    return pb.build()


@pytest.fixture
def paper_example():
    """The paper's Figure 2/3 worked example, fully simulated."""
    from repro.evaluation.paper_example import run_example

    return run_example()
